package ctj

import (
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// probMaterializeLimit bounds the estimated join size up to which the
// evaluator computes every Pr(a,b) in a single full-join pass instead of
// lazily per pair. Exploration queries are highly selective (the paper
// reports average selectivities near 1), so their filtered joins are small
// and one pass is far cheaper than per-pair path enumeration — especially
// with hub values whose in-degree makes single-pair enumeration expensive.
const probMaterializeLimit = 1 << 20

// PathProbB returns Pr(b): the probability that a random walk over the plan
// completes with Beta = b — the sum over all full paths γ with β(γ) = b of
// ∏_j 1/d_j (paper §IV-D, "Distinct"). Results are cached per b; the paper
// computes these online with CTJ in the same way ("materialize all paths
// leading to the sampled b, summing up their probabilities, and caching the
// results").
func (e *Evaluator) PathProbB(b rdf.ID) float64 {
	key := probKey(rdf.NoID, b)
	if e.shared != nil {
		return e.sharedProb(key, func() float64 {
			return e.pathProb(map[query.Var]rdf.ID{e.pl.Query.Beta: b})
		})
	}
	if p, ok := e.probCache[key]; ok {
		e.stats.ProbHits++
		return p
	}
	if e.maybeMaterializeProbs() {
		return e.probCache[key] // zero for unreachable b
	}
	e.stats.ProbMisses++
	p := e.pathProb(map[query.Var]rdf.ID{e.pl.Query.Beta: b})
	e.probCache[key] = p
	return p
}

// PathProbAB returns Pr(a, b): the probability that a random walk completes
// with Alpha = a and Beta = b. For ungrouped queries pass a = GlobalGroup;
// the group constraint is then vacuous and the result equals Pr(b).
func (e *Evaluator) PathProbAB(a, b rdf.ID) float64 {
	if e.pl.Query.Alpha == query.NoVar || a == GlobalGroup {
		return e.PathProbB(b)
	}
	key := probKey(a, b)
	if e.shared != nil {
		return e.sharedProb(key, func() float64 {
			return e.pathProb(map[query.Var]rdf.ID{e.pl.Query.Alpha: a, e.pl.Query.Beta: b})
		})
	}
	if p, ok := e.probCache[key]; ok {
		e.stats.ProbHits++
		return p
	}
	if e.maybeMaterializeProbs() {
		return e.probCache[key]
	}
	e.stats.ProbMisses++
	p := e.pathProb(map[query.Var]rdf.ID{e.pl.Query.Alpha: a, e.pl.Query.Beta: b})
	e.probCache[key] = p
	return p
}

// maybeMaterializeProbs decides once, on the first probability miss, whether
// to compute every Pr(b) and Pr(a,b) in one pass over the (filtered) join.
// Returns true when the cache is fully materialized.
func (e *Evaluator) maybeMaterializeProbs() bool {
	if e.probsMaterialized {
		return true
	}
	if e.probDecided {
		return false
	}
	e.probDecided = true
	if e.estimator().JoinSize(e.pl).Value > probMaterializeLimit {
		return false
	}
	e.materializeProbs()
	e.probsMaterialized = true
	return true
}

// materializeProbs enumerates the full join once into the private cache. The
// one-pass enumeration is the cache-fill work, so it is accounted as a single
// ProbMiss: per-worker miss counts then reflect who actually paid for the
// probabilities (each private evaluator once; with a shared cache, one worker
// per run), instead of hiding the pass behind the ProbMaterialized flag.
func (e *Evaluator) materializeProbs() {
	e.materializeProbsInto(e.probCache)
	e.stats.ProbMisses++
	e.stats.ProbMaterialized = true
}

// materializeProbsInto enumerates the full join once, accumulating the walk
// probability ∏ 1/d_j of every path into Pr(a,b) and Pr(b) entries of m. The
// d_j come for free: they are the very span lengths the enumeration descends
// into. Shared caches materialize into a fresh map and publish it atomically.
func (e *Evaluator) materializeProbsInto(m map[uint64]float64) {
	alpha, beta := e.pl.Query.Alpha, e.pl.Query.Beta
	b := e.pl.NewBindings()
	var rec func(j int, prob float64)
	rec = func(j int, prob float64) {
		if j == len(e.pl.Steps) {
			a := GlobalGroup
			if alpha != query.NoVar {
				a = b[alpha]
			}
			bb := b[beta]
			m[probKey(rdf.NoID, bb)] += prob
			if alpha != query.NoVar {
				m[probKey(a, bb)] += prob
			}
			return
		}
		st := &e.pl.Steps[j]
		sp, ok := st.ResolveSpan(e.store, b)
		if !ok {
			return
		}
		if st.Kind == query.AccessMembership {
			rec(j+1, prob) // d_j = 1
			return
		}
		p := prob / float64(sp.Len())
		ts := e.store.Triples(st.Order)
		for t := sp.Lo; t < sp.Hi; t++ {
			st.Bind(ts[t], b)
			if len(st.Filters) > 0 && !e.pl.StepFiltersOK(j, e.store, b) {
				continue // a rejected walk contributes no probability mass
			}
			rec(j+1, p)
		}
		st.Unbind(b)
	}
	rec(0, 1)
}

// pathProb sums walk probabilities over all full paths whose variable
// assignment agrees with presets.
//
// The paths are enumerated through a *constrained* plan in which the preset
// variables are replaced by constants and the patterns are reordered to
// start from the most-constrained pattern — so the enumeration touches only
// the few paths that actually lead to the preset values, never the whole
// join. Each enumerated path's probability is then computed against the
// ORIGINAL plan: d_j is the size of the candidate set the unconstrained walk
// would see at step j given the path's bindings.
func (e *Evaluator) pathProb(presets map[query.Var]rdf.ID) float64 {
	cpl := e.constrainedPlan(presets)
	if cpl == nil {
		return 0
	}
	var sum float64
	origBind := e.pl.NewBindings()
	b := cpl.NewBindings()
	var rec func(j int)
	rec = func(j int) {
		if j == len(cpl.Steps) {
			// The fallback plan binds preset variables during enumeration;
			// skip paths that contradict a preset. (Under the constrained
			// plan preset variables stay unbound — the constants did the
			// filtering — so this check passes trivially.)
			for v, want := range presets {
				if int(v) < len(b) && b[v] != rdf.NoID && b[v] != want {
					return
				}
			}
			sum += e.walkProbability(b, origBind, presets)
			return
		}
		st := &cpl.Steps[j]
		sp, ok := st.ResolveSpan(e.store, b)
		if !ok {
			return
		}
		if st.Kind == query.AccessMembership {
			rec(j + 1)
			return
		}
		ts := e.store.Triples(st.Order)
		for t := sp.Lo; t < sp.Hi; t++ {
			st.Bind(ts[t], b)
			rec(j + 1)
		}
		st.Unbind(b)
	}
	rec(0)
	return sum
}

// walkProbability computes ∏_j 1/d_j for one full path under the original
// plan, where the path's bindings are the enumeration bindings b completed
// with the preset values.
func (e *Evaluator) walkProbability(b, orig query.Bindings, presets map[query.Var]rdf.ID) float64 {
	for v := range orig {
		if v < len(b) {
			orig[v] = b[v]
		} else {
			orig[v] = rdf.NoID
		}
	}
	for v, val := range presets {
		if orig[v] == rdf.NoID {
			orig[v] = val
		}
	}
	// The constrained plan enumerates without the query's filters (preset
	// variables may have turned into constants there), so the filter check
	// happens here, on the completed original bindings: filter-failing paths
	// are walks that would have been rejected and carry no probability.
	if e.pl.HasFilters() && !e.pl.FiltersOK(e.store, orig) {
		return 0
	}
	prob := 1.0
	for j := range e.pl.Steps {
		st := &e.pl.Steps[j]
		if st.Kind == query.AccessMembership {
			continue // d_j = 1
		}
		sp, ok := st.ResolveSpan(e.store, orig)
		if !ok {
			return 0 // cannot happen for a genuine path; defensive
		}
		prob /= float64(sp.Len())
	}
	return prob
}

// constrainedPlan compiles the original query with the preset variables
// replaced by constants, reordered so that the most-constrained patterns
// are enumerated first. Returns nil when no servable order exists (then the
// probability is computed as zero; with the four maintained index orders
// this does not occur for exploration queries).
func (e *Evaluator) constrainedPlan(presets map[query.Var]rdf.ID) *query.Plan {
	q := e.pl.Query
	subst := func(a query.Atom) query.Atom {
		if a.IsVar() {
			if v, ok := presets[a.Var]; ok {
				return query.C(v)
			}
		}
		return a
	}
	pats := make([]query.Pattern, len(q.Patterns))
	for i, p := range q.Patterns {
		pats[i] = query.Pattern{S: subst(p.S), P: subst(p.P), O: subst(p.O)}
	}

	// Greedy connected order: start from the pattern with the most
	// constants; repeatedly append the connected pattern with the most
	// bound positions. Ties break on the original index for determinism.
	n := len(pats)
	used := make([]bool, n)
	bound := map[query.Var]bool{}
	consts := func(i int) int {
		c := 0
		for _, a := range []query.Atom{pats[i].S, pats[i].P, pats[i].O} {
			if !a.IsVar() || bound[a.Var] {
				c++
			}
		}
		return c
	}
	connected := func(i int) bool {
		for _, a := range []query.Atom{pats[i].S, pats[i].P, pats[i].O} {
			if a.IsVar() && bound[a.Var] {
				return true
			}
		}
		return false
	}
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestScore := -1, -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if len(order) > 0 && !connected(i) {
				continue
			}
			if s := consts(i); s > bestScore {
				best, bestScore = i, s
			}
		}
		if best < 0 {
			// Disconnected remainder (outside the fragment): append the
			// densest remaining pattern; it becomes a cartesian step.
			for i := 0; i < n; i++ {
				if !used[i] && consts(i) > bestScore {
					best, bestScore = i, consts(i)
				}
			}
		}
		used[best] = true
		order = append(order, best)
		for _, a := range []query.Atom{pats[best].S, pats[best].P, pats[best].O} {
			if a.IsVar() {
				bound[a.Var] = true
			}
		}
	}

	cq := &query.Query{Alpha: query.NoVar, Beta: q.Beta, Agg: q.Agg}
	for _, i := range order {
		cq.Patterns = append(cq.Patterns, pats[i])
	}
	// Beta may have become a constant; CompileUnchecked does not validate,
	// so that is fine — the plan is only used for enumeration.
	pl, err := query.CompileUnchecked(cq)
	if err != nil {
		// A mask like (s,o)-bound without p can arise for unusual preset
		// positions; fall back to the original plan, which always compiles.
		// The presets then act as enumeration filters only (the leaf check
		// in pathProb), which is slow but always valid.
		return e.pl
	}
	return pl
}
