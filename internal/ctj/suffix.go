package ctj

import (
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// EnumerateSuffix enumerates all completions of steps i+1..n-1 given the
// bindings of steps 0..i, invoking cb with the full bindings and the walk
// probability of the completion, prob = ∏_{j>i} 1/d_j, where d_j is the size
// of the candidate set the random walk would see at step j. Audit Join calls
// this at the tipping point, where the suffix is small by construction, so
// the enumeration is uncached.
func (e *Evaluator) EnumerateSuffix(i int, b query.Bindings, cb func(b query.Bindings, prob float64)) {
	var rec func(j int, prob float64)
	rec = func(j int, prob float64) {
		if j == len(e.pl.Steps) {
			cb(b, prob)
			return
		}
		st := &e.pl.Steps[j]
		sp, ok := st.ResolveSpan(e.store, b)
		if !ok {
			return
		}
		if st.Kind == query.AccessMembership {
			rec(j+1, prob) // d_j = 1
			return
		}
		p := prob / float64(sp.Len())
		ts := e.store.Triples(st.Order)
		for t := sp.Lo; t < sp.Hi; t++ {
			st.Bind(ts[t], b)
			// Filter-failing completions are invisible to the walk estimator
			// (the walk would have been rejected), so they contribute neither
			// a completion nor probability mass.
			if len(st.Filters) > 0 && !e.pl.StepFiltersOK(j, e.store, b) {
				continue
			}
			rec(j+1, p)
		}
		st.Unbind(b)
	}
	rec(i+1, 1)
}

// SuffixAgg returns the completions of steps i+1..n-1 aggregated per
// (group value A, counted value B): the completion count N and the walk
// probability mass P = Σ ∏_{j>i} 1/d_j. Results are cached per boundary
// interface (extended with the already-bound values of Alpha and Beta, which
// determine the aggregation even when the interface does not mention them).
// This cache is what lets Audit Join reuse a prior exact computation when a
// later walk reaches the same prefix interface (paper §IV-D).
func (e *Evaluator) SuffixAgg(i int, b query.Bindings) []SuffixGroup {
	alpha, beta := e.pl.Query.Alpha, e.pl.Query.Beta
	var aBound, bBound rdf.ID = rdf.NoID, rdf.NoID
	if alpha != query.NoVar && b[alpha] != rdf.NoID {
		aBound = b[alpha]
	}
	if b[beta] != rdf.NoID {
		bBound = b[beta]
	}
	k := e.key(i+1, b, aBound, bBound)
	if e.shared != nil {
		return e.sharedSuffixAgg(k, i, b)
	}
	if agg, ok := e.aggCache[k]; ok {
		e.stats.AggHits++
		return agg
	}
	e.stats.AggMisses++
	agg := e.computeSuffixAgg(i, b)
	e.aggCache[k] = agg
	return agg
}

// computeSuffixAgg is the uncached enumeration-and-aggregation body of
// SuffixAgg. The returned slice is treated as immutable once cached (shared
// caches publish it across goroutines).
func (e *Evaluator) computeSuffixAgg(i int, b query.Bindings) []SuffixGroup {
	alpha := e.pl.Query.Alpha
	beta := e.pl.Query.Beta

	type akey struct{ a, b rdf.ID }
	accum := make(map[akey]*SuffixGroup)
	order := make([]akey, 0, 4)
	e.EnumerateSuffix(i, b, func(bind query.Bindings, prob float64) {
		a := GlobalGroup
		if alpha != query.NoVar {
			a = bind[alpha]
		}
		key := akey{a, bind[beta]}
		g := accum[key]
		if g == nil {
			g = &SuffixGroup{A: a, B: bind[beta]}
			accum[key] = g
			order = append(order, key)
		}
		g.N++
		g.P += prob
	})
	agg := make([]SuffixGroup, 0, len(order))
	for _, key := range order {
		agg = append(agg, *accum[key])
	}
	return agg
}
