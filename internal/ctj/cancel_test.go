package ctj

import (
	"context"
	"testing"
	"time"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// denseGroupedPlan builds a grouped deep chain over a dense random graph:
// grouped, so GroupCountCtx takes the recursive (cancellable) path rather
// than the single-count evaluator call. With distinct set the prefix
// enumeration runs through Beta — the whole chain — so the amortized
// cancellation checkpoints are guaranteed to fire many times.
func denseGroupedPlan(t *testing.T, distinct bool) (*query.Plan, *index.Store) {
	t.Helper()
	g := testkit.RandomGraph(1, 40, 2, 40, 6000)
	preds := []rdf.ID{40, 41, 40}
	q := testkit.ChainQuery(g, preds, true, distinct)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return pl, testkit.BuildStore(g)
}

func TestEvaluateCtxPreCancelled(t *testing.T) {
	pl, st := denseGroupedPlan(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := EvaluateCtx(ctx, st, pl)
	if err != context.Canceled {
		t.Errorf("EvaluateCtx err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("cancelled EvaluateCtx returned partial result %v", res)
	}
	if _, err := GroupCountCtx(ctx, st, pl); err != context.Canceled {
		t.Errorf("GroupCountCtx err = %v", err)
	}
	if _, err := GroupDistinctCtx(ctx, st, pl); err != context.Canceled {
		t.Errorf("GroupDistinctCtx err = %v", err)
	}
	if _, err := GroupSumCtx(ctx, st, pl); err != context.Canceled {
		t.Errorf("GroupSumCtx err = %v", err)
	}
	if _, err := GroupAvgCtx(ctx, st, pl); err != context.Canceled {
		t.Errorf("GroupAvgCtx err = %v", err)
	}
}

// trippingContext reports no error on its first Err() call (the upfront
// check) and context.Canceled on every later one, so a test deterministically
// exercises the engines' in-run amortized checkpoints rather than the
// upfront check.
type trippingContext struct {
	context.Context
	calls int
}

func (c *trippingContext) Err() error {
	if c.calls++; c.calls > 1 {
		return context.Canceled
	}
	return nil
}

func TestEvaluateCtxMidRunCancel(t *testing.T) {
	pl, st := denseGroupedPlan(t, true)
	// Sanity: enough full assignments that the distinct prefix enumeration
	// must pass many checkEvery-step checkpoints.
	if n := Count(st, pl); n < checkEvery {
		t.Fatalf("fixture too small: %d results, want >= %d", n, checkEvery)
	}
	start := time.Now()
	res, err := EvaluateCtx(&trippingContext{Context: context.Background()}, st, pl)
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled from an in-run checkpoint", err)
	}
	if res != nil {
		t.Errorf("cancelled EvaluateCtx returned partial result with %d groups", len(res))
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("abort took %v", elapsed)
	}
}
