package snap

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/rdf"
)

// genFeed adapts kggen.Stream into BuildExternal's feed contract.
func genFeed(cfg kggen.Config) func(emit func(rdf.Triple) error) (*rdf.Dict, error) {
	return func(emit func(rdf.Triple) error) (*rdf.Dict, error) {
		d, _, err := kggen.Stream(cfg, emit)
		return d, err
	}
}

// TestBuildExternalByteIdentical pins the strongest equivalence the format
// allows: with the summary omitted (whose BuildMillis is wall-clock), a
// streaming build over kggen.Stream produces the very bytes WriteOpts
// produces over index.Build of the materialized graph — same meta, same
// sections, same checksums.
func TestBuildExternalByteIdentical(t *testing.T) {
	for _, cfg := range []kggen.Config{kggen.DBpediaSim(0.02), kggen.LGDSim(0.01)} {
		gen, _, err := kggen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := index.Build(gen)
		meta := &Meta{Source: "equivalence-test", CreatedUnix: 1700000000}
		var want bytes.Buffer
		if err := WriteOpts(&want, st, meta, WriteOptions{OmitSummary: true}); err != nil {
			t.Fatal(err)
		}

		var got bytes.Buffer
		// A tiny budget forces multiple spilled runs per order, so the merge
		// path (not the single-buffer fast path) is what's being compared.
		stats, err := BuildExternal(&got, genFeed(cfg), meta,
			ExtBuildOptions{TmpDir: t.TempDir(), MemBudget: 4 * (1 << 14) * diskTripleSize, OmitSummary: true})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Triples != st.NumTriples() {
			t.Fatalf("%s: streamed %d triples, built store has %d", cfg.Name, stats.Triples, st.NumTriples())
		}
		if stats.Runs == 0 {
			t.Fatalf("%s: budget did not force any spills; the merge path went untested", cfg.Name)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("%s: streaming build differs from in-memory build (%d vs %d bytes)",
				cfg.Name, got.Len(), want.Len())
		}
	}
}

// TestBuildExternalSummary checks the v2 path: the streamed summary must be
// structurally identical to BuildSummary's (bucket numbering included);
// only the recorded build time may differ.
func TestBuildExternalSummary(t *testing.T) {
	cfg := kggen.DBpediaSim(0.01)
	gen, _, err := kggen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(gen)
	want := index.BuildSummary(st)

	dir := t.TempDir()
	path := filepath.Join(dir, "ext.kgs")
	if _, err := BuildExternalFile(path, genFeed(cfg), nil, ExtBuildOptions{TmpDir: dir, MemBudget: 1 << 22}); err != nil {
		t.Fatal(err)
	}
	l, err := LoadFile(path, Options{Mode: ModeCopy})
	if err != nil {
		t.Fatal(err)
	}
	if l.FormatVersion != FormatVersion {
		t.Fatalf("external build stamped v%d, want v%d", l.FormatVersion, FormatVersion)
	}
	if !l.HasSummary() {
		t.Fatal("external v2 build carries no summary section")
	}
	got := l.Store.Summary()
	got.BuildMillis, want.BuildMillis = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed summary differs: %d/%d buckets, %d/%d edges",
			got.NumBuckets, want.NumBuckets, len(got.Edges), len(want.Edges))
	}
}

// TestBuildExternalSpillsBounded sanity-checks the spill accounting: the
// runs land in the requested directory and are cleaned up after the build.
func TestBuildExternalSpillsBounded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.kgs")
	stats, err := BuildExternalFile(path, genFeed(kggen.DBpediaSim(0.02)), nil,
		ExtBuildOptions{TmpDir: dir, MemBudget: 4 * (1 << 14) * diskTripleSize})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs < 4 {
		t.Fatalf("expected spilled runs in every order, got %d", stats.Runs)
	}
	if stats.SpillBytes < int64(stats.Triples)*diskTripleSize {
		t.Fatalf("spill accounting too small: %d bytes for %d triples", stats.SpillBytes, stats.Triples)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "out.kgs" {
			t.Fatalf("leftover spill file %s after build", e.Name())
		}
	}
	if _, err := LoadFile(path, Options{Mode: ModeCopy, Verify: true}); err != nil {
		t.Fatalf("streamed snapshot fails verified load: %v", err)
	}
}
