package snap

import (
	"fmt"
	"unsafe"

	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
)

// nativeAliasOK reports whether this machine's in-memory layout of the
// aliased element types coincides with the on-disk format: little-endian,
// 64-bit ints, and the expected struct sizes (no padding surprises). When it
// holds, the writer emits raw slice bytes and the mmap loader casts mapped
// bytes straight to typed slices; when it does not, both sides fall back to
// portable element-by-element encoding, and mmap loads degrade to copy
// loads.
var nativeAliasOK = func() bool {
	probe := uint16(0x0102)
	littleEndian := *(*byte)(unsafe.Pointer(&probe)) == 0x02
	return littleEndian &&
		unsafe.Sizeof(int(0)) == 8 &&
		unsafe.Sizeof(rdf.Triple{}) == diskTripleSize &&
		unsafe.Sizeof(index.Span{}) == diskSpanSize &&
		unsafe.Sizeof(index.PredStat{}) == diskPredStatSize
}()

// rawBytes exposes a slice's backing array as bytes. Only valid when
// nativeAliasOK; elemSize documents (and asserts) the expected stride.
func rawBytes[T any](s []T, elemSize int) []byte {
	if len(s) == 0 {
		return nil
	}
	if sz := int(unsafe.Sizeof(s[0])); sz != elemSize {
		panic(fmt.Sprintf("snap: element size %d, format says %d", sz, elemSize))
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*elemSize)
}

// aliasSlice reinterprets a byte range of data as a []T without copying.
// The caller guarantees bounds and element-size agreement (checked by
// sectionOf); alignment is guaranteed by the 64-byte section alignment and
// the page alignment of mmap regions.
func aliasSlice[T any](data []byte, off, count uint64) []T {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&data[off])), count)
}

// aliasString reinterprets a byte range as a string without copying. Safe
// only while the backing region stays mapped; the mmap loader's contract.
func aliasString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
