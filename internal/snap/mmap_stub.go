//go:build !(linux || darwin)

package snap

import (
	"fmt"
	"os"
)

// mmapSupported is false here: ModeAuto degrades to a copy load and
// ModeMmap reports an explicit error.
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("snap: mmap loading unsupported on this platform")
}

func munmap(data []byte) error { return nil }
