package snap

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"kgexplore/internal/core"
	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// roundTrip writes st and loads it back in both modes, returning the loaded
// stores (copy first). Cleanup closes the mmap load.
func roundTrip(t *testing.T, st *index.Store) (*index.Store, *index.Store) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.kgs")
	if err := WriteFile(path, st, &Meta{Source: "test"}); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	cp, err := LoadFile(path, Options{Mode: ModeCopy})
	if err != nil {
		t.Fatalf("copy load: %v", err)
	}
	if cp.Mmap {
		t.Error("copy load reports Mmap")
	}
	mm, err := LoadFile(path, Options{Mode: ModeAuto, Verify: true})
	if err != nil {
		t.Fatalf("mmap load: %v", err)
	}
	if mmapSupported && nativeAliasOK && !mm.Mmap {
		t.Error("auto load did not mmap on a supported platform")
	}
	t.Cleanup(func() { mm.Close() })
	return cp.Store, mm.Store
}

// sameStore compares every observable of the two stores over the full dense
// ID space and a sweep of level-2 pairs.
func sameStore(t *testing.T, name string, want, got *index.Store) {
	t.Helper()
	ws, gs := want.Stats(), got.Stats()
	if ws.Triples != gs.Triples || ws.NdvS != gs.NdvS || ws.NdvP != gs.NdvP || ws.NdvO != gs.NdvO {
		t.Errorf("%s: stats %+v, want %+v", name, gs, ws)
	}
	if len(ws.Preds) != len(gs.Preds) {
		t.Errorf("%s: %d pred stats, want %d", name, len(gs.Preds), len(ws.Preds))
	}
	for p, wps := range ws.Preds {
		if gps := gs.Preds[p]; gps != wps {
			t.Errorf("%s: pred %d stat %+v, want %+v", name, p, gps, wps)
		}
	}
	n := rdf.ID(want.Dict().Len())
	for o := index.Order(0); o < 4; o++ {
		if wt, gt := want.Triples(o), got.Triples(o); len(wt) != len(gt) {
			t.Fatalf("%s: order %v has %d triples, want %d", name, o, len(gt), len(wt))
		}
		for i, tr := range want.Triples(o) {
			if got.Triples(o)[i] != tr {
				t.Fatalf("%s: order %v triple %d = %v, want %v", name, o, i, got.Triples(o)[i], tr)
			}
		}
		for v := rdf.ID(0); v < n; v++ {
			if w, g := want.SpanL1(o, v), got.SpanL1(o, v); w != g {
				t.Errorf("%s: SpanL1(%v, %d) = %v, want %v", name, o, v, g, w)
			}
			// Sweep a deterministic sample of level-2 pairs, including
			// hits (derived from actual triples) and misses.
			sp := want.SpanL1(o, v)
			if !sp.Empty() {
				tr := want.At(o, sp, 0)
				p1 := o.Levels()[1]
				if w, g := want.SpanL2(o, v, index.Field(tr, p1)), got.SpanL2(o, v, index.Field(tr, p1)); w != g {
					t.Errorf("%s: SpanL2(%v, %d, hit) = %v, want %v", name, o, v, g, w)
				}
			}
			if w, g := want.SpanL2(o, v, v+1), got.SpanL2(o, v, v+1); w != g {
				t.Errorf("%s: SpanL2(%v, %d, probe) = %v, want %v", name, o, v, g, w)
			}
		}
	}
	for v := rdf.ID(0); v < n; v++ {
		wv, wok := want.Numeric(v)
		gv, gok := got.Numeric(v)
		if wok != gok || (wok && wv != gv) {
			t.Errorf("%s: Numeric(%d) = %v,%v want %v,%v", name, v, gv, gok, wv, wok)
		}
		if want.Dict().Term(v) != got.Dict().Term(v) {
			t.Errorf("%s: term %d = %v, want %v", name, v, got.Dict().Term(v), want.Dict().Term(v))
		}
	}
	if want.EstimateBytes() <= 0 || got.EstimateBytes() <= 0 {
		t.Errorf("%s: EstimateBytes want %d got %d, both must be positive", name, want.EstimateBytes(), got.EstimateBytes())
	}
}

func TestRoundTripEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name  string
		graph *rdf.Graph
	}{
		{"random-small", testkit.RandomGraph(1, 30, 5, 20, 300)},
		{"random-medium", testkit.RandomGraph(7, 200, 12, 150, 4000)},
		{"single-triple", func() *rdf.Graph {
			g := rdf.NewGraph()
			g.AddIRIs("s", "p", "o")
			g.Dedup()
			return g
		}()},
		{"literals", func() *rdf.Graph {
			g := rdf.NewGraph()
			g.Add(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewTypedLiteral("3.5", rdf.XSDDouble))
			g.Add(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewLangLiteral("hi", "en"))
			g.Add(rdf.NewBlank("b"), rdf.NewIRI("p"), rdf.NewLiteral("x"))
			g.Dedup()
			return g
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := index.Build(tc.graph)
			cp, mm := roundTrip(t, st)
			sameStore(t, "copy", st, cp)
			sameStore(t, "mmap", st, mm)
		})
	}
}

func TestRoundTripEmptyStore(t *testing.T) {
	g := rdf.NewGraph()
	g.Dict.InternIRI("lonely") // a term with no triples
	st := index.Build(g)
	cp, mm := roundTrip(t, st)
	sameStore(t, "copy", st, cp)
	sameStore(t, "mmap", st, mm)
}

// TestAuditJoinEquality drives the same seeded Audit Join run on the built
// and the snapshot-loaded stores: the estimates must be identical because
// the sorted arrays (and hence every sampled walk) are byte-identical.
func TestAuditJoinEquality(t *testing.T) {
	g := testkit.RandomGraph(42, 120, 8, 90, 2500)
	st := index.Build(g)
	p0 := rdf.ID(120) // first predicate ID per RandomGraph layout
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(p0), O: query.V(1)},
			{S: query.V(1), P: query.C(p0 + 1), O: query.V(2)},
		},
		Alpha: query.NoVar,
		Beta:  2,
	}
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	run := func(s *index.Store) map[rdf.ID]float64 {
		r := core.New(s, pl, core.Options{Threshold: core.DefaultThreshold, Seed: 99})
		exec.RunN(r, 3000)
		return r.Snapshot().Estimates
	}
	want := run(st)
	cp, mm := roundTrip(t, st)
	for name, s := range map[string]*index.Store{"copy": cp, "mmap": mm} {
		got := run(s)
		if len(got) != len(want) {
			t.Fatalf("%s: %d groups, want %d", name, len(got), len(want))
		}
		for gid, w := range want {
			if g := got[gid]; math.Abs(g-w) > 1e-9*math.Max(1, math.Abs(w)) {
				t.Errorf("%s: group %d estimate %g, want %g", name, gid, g, w)
			}
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	g := testkit.RandomGraph(3, 20, 4, 15, 150)
	st := index.Build(g)
	var buf bytes.Buffer
	if err := Write(&buf, st, nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := LoadBytes(data); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
	// Flip one byte in the middle of the payload region: a checksum must
	// catch it on copy loads.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x40
	if _, err := LoadBytes(corrupt); err == nil {
		t.Error("corrupted image loaded without error")
	}
	// Truncations must be rejected via the footer, not panic.
	for _, cut := range []int{1, footerSize, len(data) / 2, len(data) - headerSize} {
		if _, err := LoadBytes(data[:len(data)-cut]); err == nil {
			t.Errorf("truncation by %d accepted", cut)
		}
	}
	if _, err := LoadBytes([]byte("KGSNAP1\nnope")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestVerifyOptionOnMmap(t *testing.T) {
	if !mmapSupported || !nativeAliasOK {
		t.Skip("no mmap on this platform")
	}
	g := testkit.RandomGraph(5, 20, 4, 15, 150)
	st := index.Build(g)
	path := filepath.Join(t.TempDir(), "store.kgs")
	if err := WriteFile(path, st, nil); err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte but fix nothing else: the unverified mmap load
	// must still succeed structurally, the verified one must fail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[sectionAlign+len(data)/3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, Options{Mode: ModeMmap, Verify: true}); err == nil {
		t.Error("verified mmap load accepted corrupt payload")
	}
}

func TestDictLookupAfterLoad(t *testing.T) {
	g := rdf.NewGraph()
	g.AddIRIs("alice", "knows", "bob")
	g.Dedup()
	st := index.Build(g)
	cp, mm := roundTrip(t, st)
	for name, s := range map[string]*index.Store{"copy": cp, "mmap": mm} {
		id, ok := s.Dict().LookupIRI("alice")
		if !ok {
			t.Fatalf("%s: alice not found", name)
		}
		if got := s.Dict().Term(id); got.Value != "alice" {
			t.Errorf("%s: term %d = %v", name, id, got)
		}
		// Interning new terms after a load must keep working (dictionary
		// only grows; IDs stay stable).
		nid := s.Dict().InternIRI("carol")
		if int(nid) != s.Dict().Len()-1 {
			t.Errorf("%s: new term got ID %d, dict len %d", name, nid, s.Dict().Len())
		}
	}
}
