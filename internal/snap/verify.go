package snap

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"kgexplore/internal/index"
)

// This file implements streaming snapshot verification: the same checksum
// and structural guarantees as a verified copy load, computed over a bounded
// read buffer instead of a materialized store. A multi-gigabyte .kgs
// verifies in O(buffer + section table + summary) memory — the sections are
// CRC'd and structurally checked record by record as they stream past,
// never held whole.

// verifyBufBytes sizes the streaming read buffer — the dominant resident
// allocation of a verify pass.
const verifyBufBytes = 1 << 20

// VerifyReport summarizes a streaming verification pass.
type VerifyReport struct {
	FormatVersion int
	Meta          Meta
	// Sections counts table entries; Bytes is the file size.
	Sections int
	Bytes    int64
	// Summary is the decoded graph summary, nil for version-1 files. It is
	// the one section verification materializes (it is small and its
	// structural validation is a full decode).
	Summary      *index.Summary
	SummaryBytes int64
}

// VerifyFile verifies a snapshot file by streaming: header, footer and
// section-table structure, every section's CRC-32C, span bounds for the
// level-1/level-2 span sections, level-2 key ordering, and the summary
// decode. It never materializes a section other than meta and summary, so
// peak memory is independent of the snapshot size.
func VerifyFile(path string) (VerifyReport, error) {
	var rep VerifyReport
	f, err := os.Open(path)
	if err != nil {
		return rep, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return rep, err
	}
	size := fi.Size()
	rep.Bytes = size
	if size < headerSize+footerSize {
		return rep, fmt.Errorf("snap: file too short (%d bytes)", size)
	}

	var head [headerSize]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return rep, err
	}
	if string(head[:8]) != headerMagic {
		return rep, fmt.Errorf("snap: not a store snapshot (bad magic)")
	}
	version := binary.LittleEndian.Uint16(head[8:10])
	if version < minFormatVersion || version > formatVersion {
		return rep, fmt.Errorf("snap: unsupported format version %d (want %d..%d)",
			version, minFormatVersion, formatVersion)
	}
	if head[10] != diskTripleSize || head[11] != diskSpanSize || head[12] != diskPredStatSize {
		return rep, fmt.Errorf("snap: unexpected element sizes %d/%d/%d in header", head[10], head[11], head[12])
	}
	rep.FormatVersion = int(version)

	var foot [footerSize]byte
	if _, err := f.ReadAt(foot[:], size-footerSize); err != nil {
		return rep, err
	}
	if string(foot[24:]) != footerMagic {
		return rep, fmt.Errorf("snap: truncated snapshot (bad footer magic)")
	}
	if sz := binary.LittleEndian.Uint64(foot[16:24]); sz != uint64(size) {
		return rep, fmt.Errorf("snap: footer says %d bytes, file has %d", sz, size)
	}
	tableOff := binary.LittleEndian.Uint64(foot[0:8])
	count := binary.LittleEndian.Uint32(foot[8:12])
	wantCRC := binary.LittleEndian.Uint32(foot[12:16])
	tableLen := uint64(count) * entrySize
	if tableOff > uint64(size-footerSize) || tableLen > uint64(size-footerSize)-tableOff {
		return rep, fmt.Errorf("snap: section table out of bounds")
	}
	table := make([]byte, tableLen)
	if _, err := f.ReadAt(table, int64(tableOff)); err != nil {
		return rep, err
	}
	if crc := crc32.Checksum(table, crcTable); crc != wantCRC {
		return rep, fmt.Errorf("snap: section table checksum mismatch")
	}

	entries := make([]sectionEntry, 0, count)
	kinds := make(map[uint32]bool, count)
	for i := uint32(0); i < count; i++ {
		row := table[i*entrySize:]
		e := sectionEntry{
			kind:  binary.LittleEndian.Uint32(row[0:4]),
			crc:   binary.LittleEndian.Uint32(row[4:8]),
			off:   binary.LittleEndian.Uint64(row[8:16]),
			size:  binary.LittleEndian.Uint64(row[16:24]),
			count: binary.LittleEndian.Uint64(row[24:32]),
		}
		if e.off%sectionAlign != 0 {
			return rep, fmt.Errorf("snap: section %s misaligned at %d", fmtKind(e.kind), e.off)
		}
		if e.off > uint64(size) || e.size > uint64(size)-e.off {
			return rep, fmt.Errorf("snap: section %s out of bounds", fmtKind(e.kind))
		}
		if kinds[e.kind] {
			return rep, fmt.Errorf("snap: duplicate section %s", fmtKind(e.kind))
		}
		kinds[e.kind] = true
		entries = append(entries, e)
	}
	rep.Sections = len(entries)

	// Meta first: its counts parameterize the structural checks below.
	metaEntry, ok := findEntry(entries, secMeta)
	if !ok {
		return rep, fmt.Errorf("snap: missing section meta")
	}
	metaRaw := make([]byte, metaEntry.size)
	if _, err := f.ReadAt(metaRaw, int64(metaEntry.off)); err != nil {
		return rep, err
	}
	if err := json.Unmarshal(metaRaw, &rep.Meta); err != nil {
		return rep, fmt.Errorf("snap: meta section: %w", err)
	}
	if rep.Meta.Triples < 0 || rep.Meta.DictLen < 0 {
		return rep, fmt.Errorf("snap: negative counts in meta")
	}

	sort.Slice(entries, func(i, j int) bool { return entries[i].off < entries[j].off })
	for _, e := range entries {
		if err := verifySection(f, e, &rep); err != nil {
			return rep, err
		}
	}
	if _, ok := findEntry(entries, secDict); !ok {
		return rep, fmt.Errorf("snap: missing section dict")
	}
	return rep, nil
}

func findEntry(entries []sectionEntry, kind uint32) (sectionEntry, bool) {
	for _, e := range entries {
		if e.kind == kind {
			return e, true
		}
	}
	return sectionEntry{}, false
}

// verifySection streams one section, checking its CRC and whatever
// record-level structure its kind promises.
func verifySection(f *os.File, e sectionEntry, rep *VerifyReport) error {
	elem := 0
	switch {
	case e.kind >= secTriples && e.kind < secTriples+4:
		elem = diskTripleSize
	case e.kind >= secL1 && e.kind < secL1+4,
		e.kind >= secL2Spans && e.kind < secL2Spans+4:
		elem = diskSpanSize
	case e.kind >= secL2Keys && e.kind < secL2Keys+4:
		elem = 8
	case e.kind == secPredStats:
		elem = diskPredStatSize
	case e.kind == secNumeric, e.kind == secSummary:
		elem = 8
	}
	if elem > 0 && (e.count > uint64(e.size)/uint64(elem) || e.count*uint64(elem) != e.size) {
		return fmt.Errorf("snap: section %s declares %d elements in %d bytes", fmtKind(e.kind), e.count, e.size)
	}
	if e.kind == secDict && e.count != uint64(rep.Meta.DictLen) {
		return fmt.Errorf("snap: dict section has %d terms, meta says %d", e.count, rep.Meta.DictLen)
	}
	if e.kind >= secTriples && e.kind < secTriples+4 && e.count != uint64(rep.Meta.Triples) {
		return fmt.Errorf("snap: section %s has %d triples, meta says %d", fmtKind(e.kind), e.count, rep.Meta.Triples)
	}

	br := bufio.NewReaderSize(io.NewSectionReader(f, int64(e.off), int64(e.size)), verifyBufBytes)
	crc := uint32(0)
	var structural error

	switch {
	case e.kind >= secL1 && e.kind < secL1+4,
		e.kind >= secL2Spans && e.kind < secL2Spans+4:
		// Span records: bounds-check against the triple count while
		// checksumming, the streaming analog of checkSpans.
		var rec [diskSpanSize]byte
		for i := uint64(0); i < e.count; i++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return fmt.Errorf("snap: section %s truncated: %w", fmtKind(e.kind), err)
			}
			crc = crc32.Update(crc, crcTable, rec[:])
			lo := int64(binary.LittleEndian.Uint64(rec[0:8]))
			hi := int64(binary.LittleEndian.Uint64(rec[8:16]))
			if structural == nil && (lo < 0 || hi < lo || hi > int64(rep.Meta.Triples)) {
				structural = fmt.Errorf("snap: section %s span [%d,%d) out of bounds", fmtKind(e.kind), lo, hi)
			}
		}
	case e.kind >= secL2Keys && e.kind < secL2Keys+4:
		var rec [8]byte
		var prev uint64
		for i := uint64(0); i < e.count; i++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return fmt.Errorf("snap: section %s truncated: %w", fmtKind(e.kind), err)
			}
			crc = crc32.Update(crc, crcTable, rec[:])
			k := binary.LittleEndian.Uint64(rec[:])
			if structural == nil && i > 0 && k <= prev {
				structural = fmt.Errorf("snap: section %s keys not strictly ascending", fmtKind(e.kind))
			}
			prev = k
		}
	case e.kind == secSummary:
		// Small by construction: decode fully, which is the structural check.
		words := make([]uint64, e.count)
		var rec [8]byte
		for i := range words {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return fmt.Errorf("snap: summary section truncated: %w", err)
			}
			crc = crc32.Update(crc, crcTable, rec[:])
			words[i] = binary.LittleEndian.Uint64(rec[:])
		}
		sum, err := index.DecodeSummary(words)
		if err != nil {
			structural = fmt.Errorf("snap: summary section: %w", err)
		} else {
			rep.Summary = sum
			rep.SummaryBytes = int64(e.size)
		}
	default:
		// Bulk sections (triples, dict, predstats, numeric, meta): CRC over
		// large chunks.
		buf := make([]byte, 64<<10)
		left := e.size
		for left > 0 {
			n := uint64(len(buf))
			if n > left {
				n = left
			}
			if _, err := io.ReadFull(br, buf[:n]); err != nil {
				return fmt.Errorf("snap: section %s truncated: %w", fmtKind(e.kind), err)
			}
			crc = crc32.Update(crc, crcTable, buf[:n])
			left -= n
		}
	}
	if crc != e.crc {
		return fmt.Errorf("snap: section %s checksum mismatch", fmtKind(e.kind))
	}
	if structural != nil {
		return structural
	}
	return nil
}
