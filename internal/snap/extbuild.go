package snap

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sort"
	"time"

	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
)

// This file is the external-memory snapshot build path: BuildExternal writes
// a .kgs directly from a triple *stream* instead of a built Store, so
// fixtures far larger than memory-resident builds allow come out of the same
// format. The input may contain duplicates (kggen.Stream emits the raw
// closure stream); each order's external merge sorter (index.TripleSorter)
// deduplicates during its merge, so all four orders settle on the same
// triple set — exactly what Build produces from a deduplicated graph.
//
// Resident set: the four sort buffers (MemBudget bytes total), one dense
// level-1 span array at a time (16 B per dictionary ID), the per-predicate
// stats and numeric caches (32 B per ID), the dictionary itself, and the
// merge read buffers. Everything proportional to the triple count — the
// sorted orders and the packed level-2 pair arrays — lives in spill files.
//
// With OmitSummary the output is byte-identical to WriteOpts over
// index.Build of the same data (given an identical Meta); with the summary
// the only difference is the summary's recorded BuildMillis, since the
// streaming summary construction reproduces BuildSummary's bucket numbering
// and edge table exactly.

// DefaultMemBudget is the default external-build sort budget: small enough
// to prove the bounded-memory property on CI machines, large enough that
// scale-1 fixtures spill only a handful of runs.
const DefaultMemBudget = 256 << 20

// ExtBuildOptions configure BuildExternal.
type ExtBuildOptions struct {
	// TmpDir receives the spill files (sorted runs, packed level-2 pairs);
	// empty means the OS temp directory. Peak spill usage is roughly
	// 4x the deduplicated triple bytes plus the level-2 pair files.
	TmpDir string
	// MemBudget bounds the four sort buffers' total bytes (default
	// DefaultMemBudget). This is the knob that trades spill I/O for memory;
	// it does not cover the O(dictionary) arrays, which are irreducible.
	MemBudget int64
	// OmitSummary matches WriteOptions.OmitSummary: skip the graph-summary
	// section and stamp format version 1.
	OmitSummary bool
}

// ExtBuildStats reports what a streaming build did.
type ExtBuildStats struct {
	// RawTriples counts stream triples before deduplication; Triples after.
	RawTriples int
	Triples    int
	// Runs counts sorted runs spilled across all four orders; SpillBytes
	// their total size (level-2 pair files included).
	Runs       int
	SpillBytes int64
}

// BuildExternal streams a snapshot from a triple source. feed must emit the
// full triple stream and return the dictionary covering every ID it emitted;
// it is called exactly once. meta may be nil; counts are filled in either
// way, as in Write.
func BuildExternal(w io.Writer, feed func(emit func(rdf.Triple) error) (*rdf.Dict, error), meta *Meta, o ExtBuildOptions) (ExtBuildStats, error) {
	var stats ExtBuildStats
	tmp := o.TmpDir
	if tmp == "" {
		tmp = os.TempDir()
	}
	budget := o.MemBudget
	if budget <= 0 {
		budget = DefaultMemBudget
	}
	perSorter := int(budget / 4 / diskTripleSize)

	var sorters [4]*index.TripleSorter
	for ord := index.Order(0); ord < 4; ord++ {
		sorters[ord] = index.NewTripleSorter(tmp, ord, perSorter)
		defer sorters[ord].Close()
	}

	// Feed pass: fan every triple into the four sorters, tracking the
	// distinct subject/predicate/object sets (bitmaps over the dense ID
	// space) — that is all the meta section's NDV1 needs, and it spares a
	// dedicated pass per order.
	var seen [3]bitset
	err := func() error {
		d, err := feed(func(t rdf.Triple) error {
			stats.RawTriples++
			seen[0].set(uint32(t.S))
			seen[1].set(uint32(t.P))
			seen[2].set(uint32(t.O))
			for ord := index.Order(0); ord < 4; ord++ {
				if err := sorters[ord].Add(t); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if d == nil {
			return fmt.Errorf("snap: external build feed returned no dictionary")
		}
		eb := &extBuilder{w: w, d: d, sorters: sorters, tmp: tmp, opts: o, stats: &stats, seen: &seen}
		return eb.run(meta)
	}()
	for _, ts := range sorters {
		stats.Runs += ts.Runs()
		stats.SpillBytes += ts.SpilledBytes()
	}
	return stats, err
}

// BuildExternalFile is BuildExternal writing atomically to path, mirroring
// WriteFile's temp-and-rename.
func BuildExternalFile(path string, feed func(emit func(rdf.Triple) error) (*rdf.Dict, error), meta *Meta, o ExtBuildOptions) (ExtBuildStats, error) {
	f, err := os.CreateTemp(dirOf(path), ".snap-*")
	if err != nil {
		return ExtBuildStats{}, err
	}
	tmp := f.Name()
	defer os.Remove(tmp)
	stats, err := BuildExternal(f, feed, meta, o)
	if err != nil {
		f.Close()
		return stats, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return stats, err
	}
	if err := f.Close(); err != nil {
		return stats, err
	}
	return stats, os.Rename(tmp, path)
}

// extBuilder holds the state of one streaming build after the feed pass.
type extBuilder struct {
	w       io.Writer
	d       *rdf.Dict
	sorters [4]*index.TripleSorter
	tmp     string
	opts    ExtBuildOptions
	stats   *ExtBuildStats
	seen    *[3]bitset

	cw    *countingWriter
	table []sectionEntry

	// Summary state, carried from the SPO counting pass (bucket assignment)
	// to the summary section's edge pass.
	bucketOf []int32
	charSets [][]rdf.ID
	counts   []int64
	sumStart time.Time

	psoL1Len  int
	predStats []index.PredStat
}

// section writes one table section around emit, like Write's helper but
// filling the element count afterwards — streaming passes learn their counts
// as they go.
func (eb *extBuilder) section(kind uint32, emit func() (count int, err error)) error {
	eb.cw.pad()
	e := sectionEntry{kind: kind, off: eb.cw.off}
	eb.cw.crc = 0
	n, err := emit()
	if err != nil {
		return err
	}
	e.size = eb.cw.off - e.off
	e.crc = eb.cw.crc
	e.count = uint64(n)
	eb.table = append(eb.table, e)
	return eb.cw.err
}

func (eb *extBuilder) run(meta *Meta) error {
	for _, ts := range eb.sorters {
		ts.Finish()
	}
	dictLen := eb.d.Len()

	// Counting pass over SPO: the deduplicated triple count is in the meta
	// section, which is written before any triples, so one extra merge read
	// is the price of the forward-only file layout. The pass doubles as the
	// summary's bucket-assignment scan (subject charsets arrive as
	// predicate runs in SPO order, the same grouping BuildSummary reads off
	// the built index).
	eb.sumStart = time.Now()
	collect := !eb.opts.OmitSummary
	if collect {
		eb.bucketOf = make([]int32, dictLen)
		eb.charSets = [][]rdf.ID{nil}
		eb.counts = []int64{0}
	}
	buckets := map[string]int32{"": 0}
	var keyBuf []byte
	var predBuf []rdf.ID
	var curS rdf.ID = ^rdf.ID(0)
	flushSubject := func() {
		if !collect || len(predBuf) == 0 {
			return
		}
		id, ok := buckets[string(keyBuf)]
		if !ok {
			id = int32(len(eb.charSets))
			buckets[string(keyBuf)] = id
			eb.charSets = append(eb.charSets, append([]rdf.ID(nil), predBuf...))
			eb.counts = append(eb.counts, 0)
		}
		if int(curS) < dictLen {
			eb.bucketOf[curS] = id
		}
		eb.counts[id]++
	}
	n, err := eb.sorters[index.SPO].Iterate(func(t rdf.Triple) error {
		if !collect {
			return nil
		}
		if t.S != curS {
			flushSubject()
			curS = t.S
			keyBuf = keyBuf[:0]
			predBuf = predBuf[:0]
		}
		if p := t.P; len(predBuf) == 0 || p != predBuf[len(predBuf)-1] {
			predBuf = append(predBuf, p)
			keyBuf = append(keyBuf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
		}
		return nil
	})
	if err != nil {
		return err
	}
	flushSubject()
	if collect {
		// Leaf bucket: IDs seen as objects but never as subjects. Matches
		// BuildSummary's scan over the OPS level-1 array.
		eb.counts[0] = int64(eb.seen[2].countNotIn(&eb.seen[0]))
	}
	eb.stats.Triples = n

	m := Meta{}
	if meta != nil {
		m = *meta
	}
	m.Triples = n
	m.DictLen = dictLen
	m.NDV1 = [4]int{eb.seen[0].count(), eb.seen[2].count(), eb.seen[1].count(), eb.seen[1].count()}
	metaJSON, err := json.Marshal(m)
	if err != nil {
		return err
	}

	version := uint16(formatVersion)
	if eb.opts.OmitSummary {
		version = 1
	}
	eb.cw = &countingWriter{bw: bufio.NewWriterSize(eb.w, 1<<20)}
	cw := eb.cw
	cw.write([]byte(headerMagic))
	cw.u16(version)
	cw.write([]byte{diskTripleSize, diskSpanSize, diskPredStatSize, 0, 0, 0})

	if err := eb.section(secMeta, func() (int, error) { cw.write(metaJSON); return 1, nil }); err != nil {
		return err
	}
	if err := eb.section(secDict, func() (int, error) { writeDict(cw, eb.d); return eb.d.Len(), nil }); err != nil {
		return err
	}
	for ord := index.Order(0); ord < 4; ord++ {
		if err := eb.writeOrder(ord, dictLen, n); err != nil {
			return err
		}
	}
	if err := eb.section(secPredStats, func() (int, error) {
		writePredStats(cw, eb.predStats)
		return len(eb.predStats), nil
	}); err != nil {
		return err
	}
	if err := eb.section(secNumeric, func() (int, error) {
		numeric := index.BuildNumericTable(eb.d)
		writeFloats(cw, numeric)
		return len(numeric), nil
	}); err != nil {
		return err
	}
	if !eb.opts.OmitSummary {
		sum, err := eb.buildSummary(dictLen)
		if err != nil {
			return err
		}
		img := sum.EncodeU64()
		if err := eb.section(secSummary, func() (int, error) { writeU64s(cw, img); return len(img), nil }); err != nil {
			return err
		}
	}

	cw.pad()
	tableOff := cw.off
	cw.crc = 0
	for _, e := range eb.table {
		cw.u32(e.kind)
		cw.u32(e.crc)
		cw.u64(e.off)
		cw.u64(e.size)
		cw.u64(e.count)
	}
	tableCRC := cw.crc
	cw.u64(tableOff)
	cw.u32(uint32(len(eb.table)))
	cw.u32(tableCRC)
	cw.u64(cw.off + 16)
	cw.write([]byte(footerMagic))
	if cw.err != nil {
		return cw.err
	}
	return cw.bw.Flush()
}

// writeOrder streams one order's triples section while building its dense
// level-1 spans in memory and, for PSO/POS, spilling the packed level-2
// pairs and accumulating the per-predicate stats. The level-1 and level-2
// sections follow immediately, as in Write.
func (eb *extBuilder) writeOrder(ord index.Order, dictLen, total int) error {
	cw := eb.cw
	levels := ord.Levels()
	l1 := make([]index.Span, dictLen)
	needL2 := ord == index.PSO || ord == index.POS
	var pairs *pairFile
	if needL2 {
		var err error
		if pairs, err = newPairFile(eb.tmp); err != nil {
			return err
		}
		defer pairs.close()
	}
	trackStats := ord == index.PSO || ord == index.POS
	if ord == index.PSO {
		eb.predStats = make([]index.PredStat, dictLen)
	}

	var (
		pos             int
		k0, k1          rdf.ID
		l1Lo, l2Lo      int
		started         bool
		prevSecondary   rdf.ID
		ndvRuns         int
		statPos         = levels[1] // PSO: NdvS counts subject runs; POS: NdvO counts object runs
		closeL1, close2 func() error
	)
	closeL1 = func() error {
		if !started {
			return nil
		}
		if int(k0) >= len(l1) {
			grown := make([]index.Span, int(k0)+1)
			copy(grown, l1)
			l1 = grown
		}
		l1[k0] = index.Span{Lo: l1Lo, Hi: pos}
		if trackStats {
			st := index.PredStat{Count: pos - l1Lo}
			if ord == index.PSO {
				st.NdvS = ndvRuns
				if int(k0) >= len(eb.predStats) {
					grownPS := make([]index.PredStat, int(k0)+1)
					copy(grownPS, eb.predStats)
					eb.predStats = grownPS
				}
				eb.predStats[k0] = st
			} else {
				eb.predStats[k0].NdvO = ndvRuns
			}
		}
		return nil
	}
	close2 = func() error {
		if !started || !needL2 {
			return nil
		}
		return pairs.add(uint64(k0)<<32|uint64(k1), index.Span{Lo: l2Lo, Hi: pos})
	}

	err := eb.section(secTriples+uint32(ord), func() (int, error) {
		n, err := eb.sorters[ord].Iterate(func(t rdf.Triple) error {
			v0, v1 := fieldAt(t, levels[0]), fieldAt(t, levels[1])
			if !started || v0 != k0 {
				if err := close2(); err != nil {
					return err
				}
				if err := closeL1(); err != nil {
					return err
				}
				k0, k1 = v0, v1
				l1Lo, l2Lo = pos, pos
				ndvRuns = 0
				started = true
			} else if v1 != k1 {
				if err := close2(); err != nil {
					return err
				}
				k1 = v1
				l2Lo = pos
			}
			if trackStats {
				if v := fieldAt(t, statPos); ndvRuns == 0 || v != prevSecondary {
					ndvRuns++
					prevSecondary = v
				}
			}
			var rec [diskTripleSize]byte
			binary.LittleEndian.PutUint32(rec[0:4], uint32(t.S))
			binary.LittleEndian.PutUint32(rec[4:8], uint32(t.P))
			binary.LittleEndian.PutUint32(rec[8:12], uint32(t.O))
			cw.write(rec[:])
			pos++
			return cw.err
		})
		return n, err
	})
	if err != nil {
		return err
	}
	if err := close2(); err != nil {
		return err
	}
	if err := closeL1(); err != nil {
		return err
	}
	if pos != total {
		return fmt.Errorf("snap: order %v merged to %d triples, %v to %d", ord, pos, index.SPO, total)
	}

	if err := eb.section(secL1+uint32(ord), func() (int, error) {
		writeSpans(cw, l1)
		return len(l1), nil
	}); err != nil {
		return err
	}
	if ord == index.PSO {
		eb.psoL1Len = len(l1)
	}
	if ord == index.POS && len(eb.predStats) < eb.psoL1Len {
		grown := make([]index.PredStat, eb.psoL1Len)
		copy(grown, eb.predStats)
		eb.predStats = grown
	}
	if needL2 && pairs.n > 0 {
		if err := pairs.finish(); err != nil {
			return err
		}
		if err := eb.section(secL2Keys+uint32(ord), func() (int, error) {
			return pairs.n, pairs.stream(func(key uint64, _ index.Span) {
				cw.u64(key)
			})
		}); err != nil {
			return err
		}
		if err := eb.section(secL2Spans+uint32(ord), func() (int, error) {
			return pairs.n, pairs.stream(func(_ uint64, sp index.Span) {
				cw.u64(uint64(int64(sp.Lo)))
				cw.u64(uint64(int64(sp.Hi)))
			})
		}); err != nil {
			return err
		}
	}
	return nil
}

// buildSummary runs the summary's edge pass — a second merge read of SPO,
// now that every subject's bucket is known — and assembles the same Summary
// BuildSummary derives from a resident store.
func (eb *extBuilder) buildSummary(dictLen int) (*index.Summary, error) {
	type ekey struct {
		p        rdf.ID
		from, to int32
	}
	em := make(map[ekey]int64)
	if _, err := eb.sorters[index.SPO].Iterate(func(t rdf.Triple) error {
		var from, to int32
		if int(t.S) < dictLen {
			from = eb.bucketOf[t.S]
		}
		if int(t.O) < dictLen {
			to = eb.bucketOf[t.O]
		}
		em[ekey{t.P, from, to}]++
		return nil
	}); err != nil {
		return nil, err
	}
	edges := make([]index.SummaryEdge, 0, len(em))
	for k, c := range em {
		edges = append(edges, index.SummaryEdge{Pred: k.p, From: k.from, To: k.to, Count: c})
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Pred != b.Pred {
			return a.Pred < b.Pred
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	sum := &index.Summary{
		NumBuckets:  len(eb.charSets),
		BucketNodes: eb.counts,
		CharSetOff:  make([]int32, 1, len(eb.charSets)+1),
		Edges:       edges,
	}
	for _, cs := range eb.charSets {
		sum.CharSetPreds = append(sum.CharSetPreds, cs...)
		sum.CharSetOff = append(sum.CharSetOff, int32(len(sum.CharSetPreds)))
	}
	sum.BuildMillis = time.Since(eb.sumStart).Milliseconds()
	return sum, nil
}

func fieldAt(t rdf.Triple, p index.Pos) rdf.ID { return index.Field(t, p) }

// pairFile spills packed level-2 (key, span) records — 24 bytes each — so
// the level-2 arrays never materialize during a build; the two section
// writes stream them back.
type pairFile struct {
	f  *os.File
	bw *bufio.Writer
	n  int
}

func newPairFile(dir string) (*pairFile, error) {
	f, err := os.CreateTemp(dir, ".extsort-l2-*")
	if err != nil {
		return nil, err
	}
	return &pairFile{f: f, bw: bufio.NewWriterSize(f, 1<<20)}, nil
}

func (p *pairFile) add(key uint64, sp index.Span) error {
	var rec [24]byte
	binary.LittleEndian.PutUint64(rec[0:8], key)
	binary.LittleEndian.PutUint64(rec[8:16], uint64(int64(sp.Lo)))
	binary.LittleEndian.PutUint64(rec[16:24], uint64(int64(sp.Hi)))
	if _, err := p.bw.Write(rec[:]); err != nil {
		return err
	}
	p.n++
	return nil
}

func (p *pairFile) finish() error { return p.bw.Flush() }

func (p *pairFile) stream(fn func(key uint64, sp index.Span)) error {
	if _, err := p.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	br := bufio.NewReaderSize(p.f, 1<<20)
	var rec [24]byte
	for i := 0; i < p.n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return err
		}
		fn(binary.LittleEndian.Uint64(rec[0:8]), index.Span{
			Lo: int(int64(binary.LittleEndian.Uint64(rec[8:16]))),
			Hi: int(int64(binary.LittleEndian.Uint64(rec[16:24]))),
		})
	}
	return nil
}

func (p *pairFile) close() error {
	name := p.f.Name()
	p.f.Close()
	return os.Remove(name)
}

// bitset is a growable bitmap over the dense ID space, used to count the
// distinct subjects/predicates/objects the feed pass sees.
type bitset struct {
	words []uint64
}

func (b *bitset) set(i uint32) {
	w := int(i >> 6)
	if w >= len(b.words) {
		grown := make([]uint64, w+1+len(b.words)/2)
		copy(grown, b.words)
		b.words = grown
	}
	b.words[w] |= 1 << (i & 63)
}

func (b *bitset) count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// countNotIn counts bits set in b but not in other.
func (b *bitset) countNotIn(other *bitset) int {
	n := 0
	for i, w := range b.words {
		var ow uint64
		if i < len(other.words) {
			ow = other.words[i]
		}
		n += bits.OnesCount64(w &^ ow)
	}
	return n
}
