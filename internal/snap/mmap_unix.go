//go:build linux || darwin

package snap

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy load path; platforms without it fall
// back to copy loads (see mmap_stub.go).
const mmapSupported = true

// mmapFile maps the file read-only and shared, so the pages are backed by
// the page cache and shared across processes serving the same snapshot.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("snap: cannot mmap %d-byte file", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("snap: mmap: %w", err)
	}
	return data, nil
}

func munmap(data []byte) error {
	return syscall.Munmap(data)
}
