// Package snap persists fully built index.Store values: a versioned,
// checksummed, section-table snapshot format written once offline (kgsnap,
// or dynamic.Store after a delta rebuild) and loaded at serving time either
// by a portable copy load or by an mmap zero-copy load whose slices alias
// the mapping directly. The paper's engine assumes the four trie orders are
// resident before the first Audit Join walk; snapshots make that residency
// page-cache-bounded instead of sort-bounded, so a kgserver restart or a
// live dataset hot-swap needs no warm-up window.
//
// # Layout
//
// All integers are little-endian regardless of the writer's platform; the
// element encodings are chosen to coincide with Go's in-memory layout on
// 64-bit little-endian machines, which is what makes the mmap load a
// pointer-cast rather than a decode:
//
//	offset 0:   header (16 bytes)
//	              [8]byte magic "KGSNAP1\n"
//	              u16 format version (currently 2; 1 still loads)
//	              u8 triple size (12), u8 span size (16), u8 predstat size (24)
//	              [3]byte zero
//	offset 64:  sections, each aligned to a 64-byte boundary
//	end-32:     footer (32 bytes)
//	              u64 section-table offset
//	              u32 section count, u32 CRC-32C of the table bytes
//	              u64 total file size
//	              [8]byte magic "KGSNAPE\n"
//
// The section table (32 bytes per entry: u32 kind, u32 CRC-32C of the
// payload, u64 offset, u64 byte length, u64 element count) sits between the
// last section and the footer, so the writer streams strictly forward and
// never seeks. Section kinds cover the meta JSON, the dictionary, and per
// order the sorted triples, the dense level-1 spans and the packed level-2
// key/span arrays, plus the per-predicate statistics and the numeric-literal
// cache. Format version 2 adds one optional section: the typed graph summary
// behind the "summary" cardinality estimator (index.Summary, encoded as u64
// words), so the estimator's build cost is paid at snapshot time rather than
// on the serving path. Version-1 files carry no summary and still load; the
// restored store rebuilds it lazily on first use.
//
// Copy loads verify every section checksum and re-encode into private
// memory; mmap loads verify the header, footer and table, alias everything
// else, and leave payload checksums to an explicit Options.Verify, keeping
// the load O(touched pages). See DESIGN.md for the trust model.
package snap

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
)

// FormatVersion is the current snapshot format version, written into every
// header and required on load.
const FormatVersion = formatVersion

const (
	headerMagic   = "KGSNAP1\n"
	footerMagic   = "KGSNAPE\n"
	formatVersion = 2
	// minFormatVersion is the oldest version Load still accepts. Version 1
	// predates the graph-summary section and differs in nothing else.
	minFormatVersion = 1

	headerSize = 16
	footerSize = 32
	entrySize  = 32

	// sectionAlign is the section alignment. 64 bytes satisfies every
	// element type we alias (max alignment 8) with room to spare, and keeps
	// aliased arrays cache-line aligned.
	sectionAlign = 64

	// On-disk element sizes. Fixed by the format, not by the writer's
	// platform; they equal unsafe.Sizeof on 64-bit machines.
	diskTripleSize   = 12
	diskSpanSize     = 16
	diskPredStatSize = 24
)

// Section kinds. Per-order kinds add the index.Order value.
const (
	secMeta      = 1
	secDict      = 2
	secTriples   = 10 // 10..13: spo, ops, pso, pos
	secL1        = 20 // 20..23
	secL2Keys    = 30 // 32, 33: pso, pos only
	secL2Spans   = 40 // 42, 43
	secPredStats = 50
	secNumeric   = 51
	secSummary   = 60 // v2+: typed graph summary, u64 words (index.Summary)
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64 and
// arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Meta is the snapshot's JSON meta section: provenance plus the counts that
// are cheaper to read back than to re-derive.
type Meta struct {
	// Source describes where the data came from (a file path, a generator
	// spec); surfaced by `kgsnap info` and the server's /healthz.
	Source string `json:"source,omitempty"`
	// CreatedUnix is the write time in Unix seconds.
	CreatedUnix int64 `json:"created_unix,omitempty"`
	// Triples and DictLen size the store; NDV1 carries the per-order
	// distinct level-0 counts (spo, ops, pso, pos).
	Triples int    `json:"triples"`
	DictLen int    `json:"dict_len"`
	NDV1    [4]int `json:"ndv1"`
}

// sectionEntry is one row of the section table.
type sectionEntry struct {
	kind  uint32
	crc   uint32
	off   uint64
	size  uint64
	count uint64
}

// countingWriter tracks the logical offset and the running CRC of the
// section being written.
type countingWriter struct {
	bw  *bufio.Writer
	off uint64
	crc uint32
	err error
}

func (cw *countingWriter) write(p []byte) {
	if cw.err != nil {
		return
	}
	if _, err := cw.bw.Write(p); err != nil {
		cw.err = err
		return
	}
	cw.off += uint64(len(p))
	cw.crc = crc32.Update(cw.crc, crcTable, p)
}

func (cw *countingWriter) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	cw.write(b[:])
}

func (cw *countingWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	cw.write(b[:])
}

func (cw *countingWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	cw.write(b[:])
}

var zeros [sectionAlign]byte

// pad advances the offset to the next section boundary.
func (cw *countingWriter) pad() {
	if rem := cw.off % sectionAlign; rem != 0 {
		cw.write(zeros[:sectionAlign-rem])
	}
}

// WriteOptions configure Write.
type WriteOptions struct {
	// OmitSummary drops the graph-summary section and stamps the file as
	// format version 1 — byte-compatible with pre-v2 writers. It exists for
	// backward-compatibility tests and for callers that will never use the
	// summary estimator and want neither the build time nor the bytes.
	OmitSummary bool
}

// Write serializes the store as a snapshot. meta may be nil; counts are
// filled in either way. The writer streams strictly forward (no seeking), so
// w can be a pipe or a compressing writer as well as a file.
func Write(w io.Writer, st *index.Store, meta *Meta) error {
	return WriteOpts(w, st, meta, WriteOptions{})
}

// WriteOpts is Write with explicit options.
func WriteOpts(w io.Writer, st *index.Store, meta *Meta, wo WriteOptions) error {
	version := uint16(formatVersion)
	if wo.OmitSummary {
		version = 1
	} else {
		// Force the summary build before Parts() snapshots the field, so v2
		// files always carry it (lazy rebuild is the v1-load path only).
		st.Summary()
	}
	parts := st.Parts()
	m := Meta{}
	if meta != nil {
		m = *meta
	}
	m.Triples = len(parts.Orders[index.SPO].Triples)
	m.DictLen = parts.Dict.Len()
	for o := 0; o < 4; o++ {
		m.NDV1[o] = parts.Orders[o].NDV1
	}
	metaJSON, err := json.Marshal(m)
	if err != nil {
		return err
	}

	cw := &countingWriter{bw: bufio.NewWriterSize(w, 1<<20)}
	cw.write([]byte(headerMagic))
	cw.u16(version)
	cw.write([]byte{diskTripleSize, diskSpanSize, diskPredStatSize, 0, 0, 0})

	var table []sectionEntry
	section := func(kind uint32, count int, emit func()) {
		cw.pad()
		e := sectionEntry{kind: kind, off: cw.off, count: uint64(count)}
		cw.crc = 0
		emit()
		e.size = cw.off - e.off
		e.crc = cw.crc
		table = append(table, e)
	}

	section(secMeta, 1, func() { cw.write(metaJSON) })
	section(secDict, m.DictLen, func() { writeDict(cw, parts.Dict) })
	for o := index.Order(0); o < 4; o++ {
		op := parts.Orders[o]
		section(secTriples+uint32(o), len(op.Triples), func() { writeTriples(cw, op.Triples) })
		section(secL1+uint32(o), len(op.L1), func() { writeSpans(cw, op.L1) })
		if op.L2Keys != nil {
			section(secL2Keys+uint32(o), len(op.L2Keys), func() { writeU64s(cw, op.L2Keys) })
			section(secL2Spans+uint32(o), len(op.L2Spans), func() { writeSpans(cw, op.L2Spans) })
		}
	}
	section(secPredStats, len(parts.PredStats), func() { writePredStats(cw, parts.PredStats) })
	section(secNumeric, len(parts.Numeric), func() { writeFloats(cw, parts.Numeric) })
	if !wo.OmitSummary {
		img := parts.Summary.EncodeU64()
		section(secSummary, len(img), func() { writeU64s(cw, img) })
	}

	cw.pad()
	tableOff := cw.off
	cw.crc = 0
	for _, e := range table {
		cw.u32(e.kind)
		cw.u32(e.crc)
		cw.u64(e.off)
		cw.u64(e.size)
		cw.u64(e.count)
	}
	tableCRC := cw.crc
	cw.u64(tableOff)
	cw.u32(uint32(len(table)))
	cw.u32(tableCRC)
	cw.u64(cw.off + 16) // total size: current offset + the rest of the footer
	cw.write([]byte(footerMagic))
	if cw.err != nil {
		return cw.err
	}
	return cw.bw.Flush()
}

// WriteFile writes the snapshot atomically: to a temp file in the target
// directory, synced, then renamed over path.
func WriteFile(path string, st *index.Store, meta *Meta) error {
	return WriteFileOpts(path, st, meta, WriteOptions{})
}

// WriteFileOpts is WriteFile with explicit WriteOptions (kgsnap build
// -nosummary stamps version-1 snapshots for pre-v2 readers).
func WriteFileOpts(path string, st *index.Store, meta *Meta, wo WriteOptions) error {
	f, err := os.CreateTemp(dirOf(path), ".snap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op after the rename succeeds
	if err := WriteOpts(f, st, meta, wo); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i+1]
		}
	}
	return "."
}

func writeDict(cw *countingWriter, d *rdf.Dict) {
	str := func(s string) {
		cw.u32(uint32(len(s)))
		cw.write([]byte(s))
	}
	for i := 0; i < d.Len(); i++ {
		t := d.Term(rdf.ID(i))
		cw.write([]byte{byte(t.Kind)})
		str(t.Value)
		str(t.Datatype)
		str(t.Lang)
	}
}

func writeTriples(cw *countingWriter, ts []rdf.Triple) {
	if nativeAliasOK {
		cw.write(rawBytes(ts, diskTripleSize))
		return
	}
	for _, t := range ts {
		cw.u32(uint32(t.S))
		cw.u32(uint32(t.P))
		cw.u32(uint32(t.O))
	}
}

func writeSpans(cw *countingWriter, sp []index.Span) {
	if nativeAliasOK {
		cw.write(rawBytes(sp, diskSpanSize))
		return
	}
	for _, s := range sp {
		cw.u64(uint64(int64(s.Lo)))
		cw.u64(uint64(int64(s.Hi)))
	}
}

func writeU64s(cw *countingWriter, ks []uint64) {
	if nativeAliasOK {
		cw.write(rawBytes(ks, 8))
		return
	}
	for _, k := range ks {
		cw.u64(k)
	}
}

func writePredStats(cw *countingWriter, ps []index.PredStat) {
	if nativeAliasOK {
		cw.write(rawBytes(ps, diskPredStatSize))
		return
	}
	for _, p := range ps {
		cw.u64(uint64(int64(p.Count)))
		cw.u64(uint64(int64(p.NdvS)))
		cw.u64(uint64(int64(p.NdvO)))
	}
}

func writeFloats(cw *countingWriter, fs []float64) {
	if nativeAliasOK {
		cw.write(rawBytes(fs, 8))
		return
	}
	for _, f := range fs {
		cw.u64(math.Float64bits(f))
	}
}

func fmtKind(kind uint32) string {
	name := func(base uint32, what string) string {
		return fmt.Sprintf("%s[%v]", what, index.Order(kind-base))
	}
	switch {
	case kind == secMeta:
		return "meta"
	case kind == secDict:
		return "dict"
	case kind >= secTriples && kind < secTriples+4:
		return name(secTriples, "triples")
	case kind >= secL1 && kind < secL1+4:
		return name(secL1, "l1")
	case kind >= secL2Keys && kind < secL2Keys+4:
		return name(secL2Keys, "l2keys")
	case kind >= secL2Spans && kind < secL2Spans+4:
		return name(secL2Spans, "l2spans")
	case kind == secPredStats:
		return "predstats"
	case kind == secNumeric:
		return "numeric"
	case kind == secSummary:
		return "summary"
	default:
		return fmt.Sprintf("kind(%d)", kind)
	}
}
