package snap

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/testkit"
)

// TestSummaryRoundTrip checks that a v2 snapshot carries the typed graph
// summary and both load modes restore it verbatim — no lazy rebuild.
func TestSummaryRoundTrip(t *testing.T) {
	g := testkit.RandomGraph(21, 40, 5, 30, 600)
	st := index.Build(g)
	want := st.Summary() // forces the build the writer would force anyway

	path := filepath.Join(t.TempDir(), "store.kgs")
	if err := WriteFile(path, st, nil); err != nil {
		t.Fatal(err)
	}
	in, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if in.FormatVersion != FormatVersion {
		t.Errorf("Inspect version %d, want %d", in.FormatVersion, FormatVersion)
	}
	sec, ok := in.Section("summary")
	if !ok {
		t.Fatalf("v2 snapshot lacks a summary section: %+v", in.Sections)
	}
	if int(sec.Count) != len(want.EncodeU64()) {
		t.Errorf("summary section holds %d words, encoding has %d", sec.Count, len(want.EncodeU64()))
	}

	for _, mode := range []Mode{ModeCopy, ModeAuto} {
		l, err := LoadFile(path, Options{Mode: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if l.FormatVersion != FormatVersion {
			t.Errorf("mode %v: FormatVersion = %d, want %d", mode, l.FormatVersion, FormatVersion)
		}
		if !l.HasSummary() || l.SummaryBytes != int64(sec.Size) {
			t.Errorf("mode %v: SummaryBytes = %d, want %d", mode, l.SummaryBytes, sec.Size)
		}
		got := l.Store.Summary()
		if !reflect.DeepEqual(got.EncodeU64(), want.EncodeU64()) {
			t.Errorf("mode %v: restored summary differs from built one", mode)
		}
		l.Close()
	}
}

// TestV1BackwardCompat pins the compatibility contract: OmitSummary writes a
// version-1 file, which loads under the current reader with no summary
// section, and the restored store rebuilds the summary lazily on first use.
func TestV1BackwardCompat(t *testing.T) {
	g := testkit.RandomGraph(23, 30, 4, 25, 400)
	st := index.Build(g)

	var buf bytes.Buffer
	if err := WriteOpts(&buf, st, nil, WriteOptions{OmitSummary: true}); err != nil {
		t.Fatal(err)
	}
	in, err := InspectBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if in.FormatVersion != 1 {
		t.Errorf("OmitSummary wrote version %d, want 1", in.FormatVersion)
	}
	if _, ok := in.Section("summary"); ok {
		t.Error("OmitSummary still wrote a summary section")
	}

	l, err := LoadBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("v1 image rejected: %v", err)
	}
	if l.FormatVersion != 1 || l.HasSummary() {
		t.Errorf("v1 load: FormatVersion=%d HasSummary=%v", l.FormatVersion, l.HasSummary())
	}
	want := index.BuildSummary(st)
	got := l.Store.Summary() // lazy rebuild path
	got.BuildMillis, want.BuildMillis = 0, 0
	if !reflect.DeepEqual(got.EncodeU64(), want.EncodeU64()) {
		t.Error("lazily rebuilt summary differs from a direct build")
	}

	// A v1 file must be byte-identical in its shared prefix semantics: the
	// same store written with and without the summary differs only by the
	// version stamp and the extra section.
	var v2 bytes.Buffer
	if err := Write(&v2, st, nil); err != nil {
		t.Fatal(err)
	}
	if v2.Len() <= buf.Len() {
		t.Errorf("v2 file (%d bytes) not larger than v1 (%d bytes)", v2.Len(), buf.Len())
	}
}

// TestUnknownVersionRejected guards the version window: a header from the
// future must fail loudly, not misparse.
func TestUnknownVersionRejected(t *testing.T) {
	g := testkit.RandomGraph(27, 10, 2, 8, 40)
	var buf bytes.Buffer
	if err := Write(&buf, index.Build(g), nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8] = 99 // format version u16 little-endian low byte
	if _, err := LoadBytes(data); err == nil {
		t.Error("future format version accepted")
	}
	if _, err := InspectBytes(data); err == nil {
		t.Error("Inspect accepted a future format version")
	}
}

// TestSummaryCorruptionDetected flips bytes inside the summary section:
// checksum verification (copy loads, verified mmap loads) must reject the
// image, and the error must name the section.
func TestSummaryCorruptionDetected(t *testing.T) {
	g := testkit.RandomGraph(31, 30, 4, 25, 400)
	st := index.Build(g)
	var buf bytes.Buffer
	if err := Write(&buf, st, nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	in, err := InspectBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	sec, ok := in.Section("summary")
	if !ok {
		t.Fatal("no summary section")
	}
	corrupt := append([]byte(nil), data...)
	corrupt[sec.Off+sec.Size/2] ^= 0x10
	_, err = LoadBytes(corrupt)
	if err == nil {
		t.Fatal("corrupted summary section loaded without error")
	}
	if want := "summary"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q does not name the %s section", err, want)
	}

	// Structural corruption that keeps the checksum intact: rewrite the
	// header word so DecodeSummary's validation, not the CRC, must catch it.
	structural := append([]byte(nil), data...)
	for i := 0; i < 8; i++ {
		structural[int(sec.Off)+i] = 0xff // NumBuckets := 2^64-1
	}
	fixCRC(t, structural, sec)
	if _, err := LoadBytes(structural); err == nil {
		t.Error("structurally corrupt summary loaded without error")
	}
}

// fixCRC recomputes one section's checksum in the table and the table's
// checksum in the footer, so a test can make payload edits that only
// structural validation can catch.
func fixCRC(t *testing.T, data []byte, sec SectionInfo) {
	t.Helper()
	foot := data[len(data)-footerSize:]
	tableOff := binary.LittleEndian.Uint64(foot[0:8])
	count := int(binary.LittleEndian.Uint32(foot[8:12]))
	for i := 0; i < count; i++ {
		row := data[tableOff+uint64(i*entrySize):]
		if binary.LittleEndian.Uint64(row[8:16]) == sec.Off {
			crc := crc32.Checksum(data[sec.Off:sec.Off+sec.Size], crcTable)
			binary.LittleEndian.PutUint32(row[4:8], crc)
		}
	}
	table := data[tableOff : tableOff+uint64(count*entrySize)]
	binary.LittleEndian.PutUint32(foot[12:16], crc32.Checksum(table, crcTable))
}
