package snap

import (
	"bytes"
	"encoding/binary"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
)

// FuzzLoadBytes: the copy loader must never panic on arbitrary input, and
// anything it accepts must be a structurally sound store (every span within
// the triple arrays), because queries index through spans unchecked.
func FuzzLoadBytes(f *testing.F) {
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b")
	g.AddIRIs("b", "p", "c")
	g.Dedup()
	var buf bytes.Buffer
	if err := Write(&buf, index.Build(g), &Meta{Source: "seed"}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte(headerMagic))
	f.Add([]byte(headerMagic + "\x01\x00\x0c\x10\x18\x00\x00\x00"))
	// A file that is all footer: hostile table offsets and counts.
	foot := make([]byte, headerSize+footerSize)
	copy(foot, headerMagic)
	binary.LittleEndian.PutUint16(foot[8:], formatVersion)
	foot[10], foot[11], foot[12] = diskTripleSize, diskSpanSize, diskPredStatSize
	binary.LittleEndian.PutUint64(foot[headerSize:], ^uint64(0))
	binary.LittleEndian.PutUint32(foot[headerSize+8:], ^uint32(0))
	binary.LittleEndian.PutUint64(foot[headerSize+16:], uint64(len(foot)))
	copy(foot[headerSize+24:], footerMagic)
	f.Add(foot)

	f.Fuzz(func(t *testing.T, in []byte) {
		l, err := LoadBytes(in)
		if err != nil {
			return
		}
		st := l.Store
		n := st.NumTriples()
		for o := index.Order(0); o < 4; o++ {
			if len(st.Triples(o)) != n {
				t.Fatalf("accepted store with ragged orders: %v has %d of %d", o, len(st.Triples(o)), n)
			}
			for v := rdf.ID(0); int(v) < st.Dict().Len(); v++ {
				sp := st.SpanL1(o, v)
				if sp.Lo < 0 || sp.Hi < sp.Lo || sp.Hi > n {
					t.Fatalf("accepted store with wild span %v", sp)
				}
			}
		}
	})
}
