package snap

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SectionInfo is one row of a snapshot's section table, with the kind
// resolved to its display name.
type SectionInfo struct {
	Kind  string
	Off   uint64
	Size  uint64
	Count uint64
}

// Info is a structural inspection of a snapshot file: the header version,
// the decoded meta section and the section layout. Inspect validates the
// header, footer and table (and, unlike a load, nothing else), so it works
// on files whose payloads would fail to restore — which is exactly what the
// corruption tests need to aim their byte flips.
type Info struct {
	FormatVersion int
	Meta          Meta
	Sections      []SectionInfo
}

// Section returns the named section, if present.
func (in Info) Section(kind string) (SectionInfo, bool) {
	for _, s := range in.Sections {
		if s.Kind == kind {
			return s, true
		}
	}
	return SectionInfo{}, false
}

// Inspect reads and structurally parses a snapshot file.
func Inspect(path string) (Info, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Info{}, err
	}
	return InspectBytes(data)
}

// InspectBytes is Inspect over an in-memory image.
func InspectBytes(data []byte) (Info, error) {
	f, err := parseFile(data, false)
	if err != nil {
		return Info{}, err
	}
	in := Info{FormatVersion: int(f.version)}
	meta, ok := f.sections[secMeta]
	if !ok {
		return Info{}, fmt.Errorf("snap: missing section meta")
	}
	if err := json.Unmarshal(f.payload(meta), &in.Meta); err != nil {
		return Info{}, fmt.Errorf("snap: meta section: %w", err)
	}
	for kind, e := range f.sections {
		in.Sections = append(in.Sections, SectionInfo{
			Kind:  fmtKind(kind),
			Off:   e.off,
			Size:  e.size,
			Count: e.count,
		})
	}
	sort.Slice(in.Sections, func(i, j int) bool { return in.Sections[i].Off < in.Sections[j].Off })
	return in, nil
}
