package snap

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
)

func writeTestSnapshot(t *testing.T) string {
	t.Helper()
	g, _, err := kggen.Generate(kggen.DBpediaSim(0.01))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v.kgs")
	if err := WriteFile(path, index.Build(g), &Meta{Source: "verify-test"}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVerifyFileOK(t *testing.T) {
	path := writeTestSnapshot(t)
	rep, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FormatVersion != FormatVersion {
		t.Fatalf("reported v%d, want v%d", rep.FormatVersion, FormatVersion)
	}
	if rep.Meta.Source != "verify-test" || rep.Meta.Triples == 0 {
		t.Fatalf("meta not surfaced: %+v", rep.Meta)
	}
	if rep.Summary == nil || rep.Summary.NumBuckets < 2 {
		t.Fatal("summary not decoded during verify")
	}

	// The streaming pass must agree with the copy-load verifier's verdict.
	if _, err := LoadFile(path, Options{Mode: ModeCopy, Verify: true}); err != nil {
		t.Fatalf("copy load disagrees on a file streaming verify accepted: %v", err)
	}
}

// TestVerifyFileCorruption flips one byte in every section and expects the
// streaming verifier to reject each mutation, like the copy loader does.
func TestVerifyFileCorruption(t *testing.T) {
	path := writeTestSnapshot(t)
	info, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range info.Sections {
		if sec.Size == 0 {
			continue
		}
		mut := append([]byte(nil), orig...)
		mut[sec.Off+sec.Size/2] ^= 0x40
		mutPath := filepath.Join(t.TempDir(), "mut.kgs")
		if err := os.WriteFile(mutPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyFile(mutPath); err == nil {
			t.Errorf("flip inside section %s went undetected", sec.Kind)
		}
	}
}

func TestVerifyFileTruncated(t *testing.T) {
	path := writeTestSnapshot(t)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.kgs")
	if err := os.WriteFile(trunc, orig[:len(orig)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyFile(trunc); err == nil || !strings.Contains(err.Error(), "snap:") {
		t.Fatalf("truncated file verified: %v", err)
	}
}
