package snap

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
)

// Mode selects how LoadFile materializes the store.
type Mode int

const (
	// ModeAuto picks mmap when the platform and architecture support
	// zero-copy aliasing, and falls back to a copy load otherwise.
	ModeAuto Mode = iota
	// ModeCopy reads and verifies the whole file and decodes every section
	// into private memory. Portable and self-contained: Close is a no-op.
	ModeCopy
	// ModeMmap maps the file and aliases the index arrays directly over the
	// mapping. Fails on platforms without mmap support or with an
	// incompatible native layout.
	ModeMmap
)

// Options configures a load.
type Options struct {
	Mode Mode
	// Verify forces full payload-checksum verification even on mmap loads
	// (copy loads always verify). It reads every page of the file.
	Verify bool
}

// Loaded is a loaded snapshot: the restored store plus the resources backing
// it. For mmap loads the store's slices alias the mapping, so the store must
// not be used after Close; copy loads have no backing resources and Close is
// a no-op.
type Loaded struct {
	Store *index.Store
	Meta  Meta
	// FormatVersion is the version stamped in the file's header (1 or 2),
	// as opposed to snap.FormatVersion, the version the writer produces.
	FormatVersion int
	// SummaryBytes is the on-disk size of the graph-summary section; zero
	// for version-1 files, where Store.Summary() rebuilds it on first use.
	SummaryBytes int64
	// Mmap reports whether the store aliases a live mapping.
	Mmap    bool
	mapping []byte
}

// HasSummary reports whether the snapshot carried a persisted graph summary.
func (l *Loaded) HasSummary() bool { return l.SummaryBytes > 0 }

// Close releases the mapping, if any. The store is invalid afterwards for
// mmap loads; the caller is responsible for draining every reader first (see
// the server's epoch refcounting).
func (l *Loaded) Close() error {
	if l.mapping == nil {
		return nil
	}
	m := l.mapping
	l.mapping = nil
	return munmap(m)
}

// LoadFile loads a snapshot file.
func LoadFile(path string, opts Options) (*Loaded, error) {
	switch opts.Mode {
	case ModeCopy:
		return loadFileCopy(path)
	case ModeMmap:
		if !mmapSupported {
			return nil, fmt.Errorf("snap: mmap loading unsupported on this platform")
		}
		if !nativeAliasOK {
			return nil, fmt.Errorf("snap: native layout incompatible with zero-copy aliasing")
		}
		return loadFileMmap(path, opts)
	default:
		if mmapSupported && nativeAliasOK {
			return loadFileMmap(path, opts)
		}
		return loadFileCopy(path)
	}
}

func loadFileCopy(path string) (*Loaded, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return LoadBytes(data)
}

func loadFileMmap(path string, opts Options) (*Loaded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, err := mmapFile(f, fi.Size())
	if err != nil {
		return nil, err
	}
	l, err := load(data, true, opts.Verify)
	if err != nil {
		munmap(data)
		return nil, err
	}
	l.mapping = data
	l.Mmap = true
	return l, nil
}

// LoadBytes performs a copy load from an in-memory snapshot image: every
// checksum is verified and the resulting store shares no memory with data.
// This is the fuzzing entry point.
func LoadBytes(data []byte) (*Loaded, error) {
	return load(data, false, true)
}

// file is a parsed snapshot image: the raw bytes plus the validated section
// table.
type file struct {
	data     []byte
	version  uint16
	sections map[uint32]sectionEntry
}

// parseFile validates the header, footer and section table. Structural
// bounds are fully checked here so later section access cannot run off the
// image; payload checksums are the caller's choice.
func parseFile(data []byte, verifyPayloads bool) (*file, error) {
	if len(data) < headerSize+footerSize {
		return nil, fmt.Errorf("snap: file too short (%d bytes)", len(data))
	}
	if string(data[:8]) != headerMagic {
		return nil, fmt.Errorf("snap: not a store snapshot (bad magic)")
	}
	version := binary.LittleEndian.Uint16(data[8:10])
	if version < minFormatVersion || version > formatVersion {
		return nil, fmt.Errorf("snap: unsupported format version %d (want %d..%d)",
			version, minFormatVersion, formatVersion)
	}
	if data[10] != diskTripleSize || data[11] != diskSpanSize || data[12] != diskPredStatSize {
		return nil, fmt.Errorf("snap: unexpected element sizes %d/%d/%d in header", data[10], data[11], data[12])
	}
	foot := data[len(data)-footerSize:]
	if string(foot[24:]) != footerMagic {
		return nil, fmt.Errorf("snap: truncated snapshot (bad footer magic)")
	}
	if sz := binary.LittleEndian.Uint64(foot[16:24]); sz != uint64(len(data)) {
		return nil, fmt.Errorf("snap: footer says %d bytes, file has %d", sz, len(data))
	}
	tableOff := binary.LittleEndian.Uint64(foot[0:8])
	count := binary.LittleEndian.Uint32(foot[8:12])
	wantCRC := binary.LittleEndian.Uint32(foot[12:16])
	tableLen := uint64(count) * entrySize
	if tableOff > uint64(len(data)-footerSize) || tableLen > uint64(len(data)-footerSize)-tableOff {
		return nil, fmt.Errorf("snap: section table out of bounds")
	}
	table := data[tableOff : tableOff+tableLen]
	if crc := crc32.Checksum(table, crcTable); crc != wantCRC {
		return nil, fmt.Errorf("snap: section table checksum mismatch")
	}
	f := &file{data: data, version: version, sections: make(map[uint32]sectionEntry, count)}
	for i := uint32(0); i < count; i++ {
		row := table[i*entrySize:]
		e := sectionEntry{
			kind:  binary.LittleEndian.Uint32(row[0:4]),
			crc:   binary.LittleEndian.Uint32(row[4:8]),
			off:   binary.LittleEndian.Uint64(row[8:16]),
			size:  binary.LittleEndian.Uint64(row[16:24]),
			count: binary.LittleEndian.Uint64(row[24:32]),
		}
		if e.off%sectionAlign != 0 {
			return nil, fmt.Errorf("snap: section %s misaligned at %d", fmtKind(e.kind), e.off)
		}
		if e.off > uint64(len(data)) || e.size > uint64(len(data))-e.off {
			return nil, fmt.Errorf("snap: section %s out of bounds", fmtKind(e.kind))
		}
		if _, dup := f.sections[e.kind]; dup {
			return nil, fmt.Errorf("snap: duplicate section %s", fmtKind(e.kind))
		}
		if verifyPayloads {
			if crc := crc32.Checksum(data[e.off:e.off+e.size], crcTable); crc != e.crc {
				return nil, fmt.Errorf("snap: section %s checksum mismatch", fmtKind(e.kind))
			}
		}
		f.sections[e.kind] = e
	}
	return f, nil
}

// section returns a required section's entry, validating its element count
// against the declared byte size.
func (f *file) section(kind uint32, elemSize int) (sectionEntry, error) {
	e, ok := f.sections[kind]
	if !ok {
		return sectionEntry{}, fmt.Errorf("snap: missing section %s", fmtKind(kind))
	}
	if e.count > math.MaxUint64/uint64(elemSize) || e.count*uint64(elemSize) != e.size {
		return sectionEntry{}, fmt.Errorf("snap: section %s declares %d elements in %d bytes", fmtKind(kind), e.count, e.size)
	}
	return e, nil
}

func (f *file) payload(e sectionEntry) []byte { return f.data[e.off : e.off+e.size] }

// load parses and restores a snapshot image. alias=true wires the store
// directly over data (mmap); alias=false decodes into private memory and
// bounds-checks every span so hostile images cannot produce a store that
// panics later.
func load(data []byte, alias, verifyPayloads bool) (*Loaded, error) {
	f, err := parseFile(data, verifyPayloads)
	if err != nil {
		return nil, err
	}

	metaEntry, ok := f.sections[secMeta]
	if !ok {
		return nil, fmt.Errorf("snap: missing section meta")
	}
	var meta Meta
	if err := json.Unmarshal(f.payload(metaEntry), &meta); err != nil {
		return nil, fmt.Errorf("snap: meta section: %w", err)
	}
	if meta.DictLen < 0 || meta.Triples < 0 {
		return nil, fmt.Errorf("snap: negative counts in meta")
	}

	dictEntry, ok := f.sections[secDict]
	if !ok {
		return nil, fmt.Errorf("snap: missing section dict")
	}
	if dictEntry.count != uint64(meta.DictLen) {
		return nil, fmt.Errorf("snap: dict section has %d terms, meta says %d", dictEntry.count, meta.DictLen)
	}
	terms, err := decodeTerms(f.payload(dictEntry), meta.DictLen, alias)
	if err != nil {
		return nil, err
	}

	parts := index.Parts{
		Dict:        rdf.DictFromTerms(terms),
		EagerL2Maps: !alias,
	}
	for o := index.Order(0); o < 4; o++ {
		var op index.OrderParts
		if op.Triples, err = loadTyped[rdf.Triple](f, secTriples+uint32(o), diskTripleSize, alias, decodeTriples); err != nil {
			return nil, err
		}
		if op.L1, err = loadTyped[index.Span](f, secL1+uint32(o), diskSpanSize, alias, decodeSpans); err != nil {
			return nil, err
		}
		if o == index.PSO || o == index.POS {
			// The level-2 sections are omitted for empty stores; Restore
			// distinguishes "no level-2" (nil) from "empty level-2"
			// (non-nil, zero length), so default to the latter.
			op.L2Keys, op.L2Spans = []uint64{}, []index.Span{}
			if _, present := f.sections[secL2Keys+uint32(o)]; present {
				if op.L2Keys, err = loadTyped[uint64](f, secL2Keys+uint32(o), 8, alias, decodeU64s); err != nil {
					return nil, err
				}
				if op.L2Spans, err = loadTyped[index.Span](f, secL2Spans+uint32(o), diskSpanSize, alias, decodeSpans); err != nil {
					return nil, err
				}
			}
		}
		if op.NDV1 = meta.NDV1[o]; op.NDV1 < 0 || op.NDV1 > len(op.L1) {
			return nil, fmt.Errorf("snap: order %v ndv1 %d out of range", o, op.NDV1)
		}
		if !alias {
			if err := checkSpans(op, meta.Triples); err != nil {
				return nil, fmt.Errorf("snap: order %v: %w", o, err)
			}
		}
		parts.Orders[o] = op
	}
	if parts.PredStats, err = loadTyped[index.PredStat](f, secPredStats, diskPredStatSize, alias, decodePredStats); err != nil {
		return nil, err
	}
	if parts.Numeric, err = loadTyped[float64](f, secNumeric, 8, alias, decodeFloats); err != nil {
		return nil, err
	}
	var summaryBytes int64
	if e, present := f.sections[secSummary]; present {
		// The summary is tiny relative to the index arrays, and DecodeSummary
		// copies while validating structure, so even mmap loads decode it
		// into private memory (the alias only backs the transient u64 view).
		words, err := loadTyped[uint64](f, secSummary, 8, alias, decodeU64s)
		if err != nil {
			return nil, err
		}
		sum, err := index.DecodeSummary(words)
		if err != nil {
			return nil, fmt.Errorf("snap: summary section: %w", err)
		}
		parts.Summary = sum
		summaryBytes = int64(e.size)
	}

	st, err := index.Restore(parts)
	if err != nil {
		return nil, err
	}
	if st.NumTriples() != meta.Triples {
		return nil, fmt.Errorf("snap: meta says %d triples, sections hold %d", meta.Triples, st.NumTriples())
	}
	return &Loaded{Store: st, Meta: meta, FormatVersion: int(f.version), SummaryBytes: summaryBytes}, nil
}

// loadTyped materializes one array section: a zero-copy alias over the image
// when alias is set, otherwise a portable decode into private memory.
func loadTyped[T any](f *file, kind uint32, elemSize int, alias bool, decode func([]byte, int) []T) ([]T, error) {
	e, err := f.section(kind, elemSize)
	if err != nil {
		return nil, err
	}
	if alias {
		return aliasSlice[T](f.data, e.off, e.count), nil
	}
	return decode(f.payload(e), int(e.count)), nil
}

func decodeTriples(b []byte, n int) []rdf.Triple {
	out := make([]rdf.Triple, n)
	if nativeAliasOK {
		copy(rawBytes(out, diskTripleSize), b)
		return out
	}
	for i := range out {
		row := b[i*diskTripleSize:]
		out[i] = rdf.Triple{
			S: rdf.ID(binary.LittleEndian.Uint32(row[0:4])),
			P: rdf.ID(binary.LittleEndian.Uint32(row[4:8])),
			O: rdf.ID(binary.LittleEndian.Uint32(row[8:12])),
		}
	}
	return out
}

func decodeSpans(b []byte, n int) []index.Span {
	out := make([]index.Span, n)
	if nativeAliasOK {
		copy(rawBytes(out, diskSpanSize), b)
		return out
	}
	for i := range out {
		row := b[i*diskSpanSize:]
		out[i] = index.Span{
			Lo: int(int64(binary.LittleEndian.Uint64(row[0:8]))),
			Hi: int(int64(binary.LittleEndian.Uint64(row[8:16]))),
		}
	}
	return out
}

func decodeU64s(b []byte, n int) []uint64 {
	out := make([]uint64, n)
	if nativeAliasOK {
		copy(rawBytes(out, 8), b)
		return out
	}
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

func decodePredStats(b []byte, n int) []index.PredStat {
	out := make([]index.PredStat, n)
	if nativeAliasOK {
		copy(rawBytes(out, diskPredStatSize), b)
		return out
	}
	for i := range out {
		row := b[i*diskPredStatSize:]
		out[i] = index.PredStat{
			Count: int(int64(binary.LittleEndian.Uint64(row[0:8]))),
			NdvS:  int(int64(binary.LittleEndian.Uint64(row[8:16]))),
			NdvO:  int(int64(binary.LittleEndian.Uint64(row[16:24]))),
		}
	}
	return out
}

func decodeFloats(b []byte, n int) []float64 {
	out := make([]float64, n)
	if nativeAliasOK {
		copy(rawBytes(out, 8), b)
		return out
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// decodeTerms parses the dictionary section. alias=true keeps term strings
// pointing into the image (zero-copy, mmap); alias=false copies them so the
// image can be released.
func decodeTerms(b []byte, n int, alias bool) ([]rdf.Term, error) {
	terms := make([]rdf.Term, 0, n)
	off := 0
	str := func() (string, error) {
		if off+4 > len(b) {
			return "", fmt.Errorf("snap: dict section truncated")
		}
		l := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if l < 0 || off+l > len(b) {
			return "", fmt.Errorf("snap: dict string runs past section end")
		}
		raw := b[off : off+l]
		off += l
		if alias {
			return aliasString(raw), nil
		}
		return string(raw), nil
	}
	for i := 0; i < n; i++ {
		if off >= len(b) {
			return nil, fmt.Errorf("snap: dict section holds fewer than %d terms", n)
		}
		kind := rdf.TermKind(b[off])
		off++
		if kind > rdf.BlankNode {
			return nil, fmt.Errorf("snap: term %d has invalid kind %d", i, kind)
		}
		var t rdf.Term
		t.Kind = kind
		var err error
		if t.Value, err = str(); err != nil {
			return nil, err
		}
		if t.Datatype, err = str(); err != nil {
			return nil, err
		}
		if t.Lang, err = str(); err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	return terms, nil
}

// checkSpans bounds-checks every span of a copy-loaded order against the
// triple count, so hostile images fail at load rather than panicking inside
// a query.
func checkSpans(op index.OrderParts, triples int) error {
	if len(op.Triples) != triples {
		return fmt.Errorf("has %d triples, meta says %d", len(op.Triples), triples)
	}
	for _, sp := range op.L1 {
		if sp.Lo < 0 || sp.Hi < sp.Lo || sp.Hi > triples {
			return fmt.Errorf("level-1 span [%d,%d) out of bounds", sp.Lo, sp.Hi)
		}
	}
	var prev uint64
	for i, sp := range op.L2Spans {
		if sp.Lo < 0 || sp.Hi < sp.Lo || sp.Hi > triples {
			return fmt.Errorf("level-2 span [%d,%d) out of bounds", sp.Lo, sp.Hi)
		}
		if i > 0 && op.L2Keys[i] <= prev {
			return fmt.Errorf("level-2 keys not strictly ascending")
		}
		prev = op.L2Keys[i]
	}
	return nil
}
