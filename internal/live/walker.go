package live

import (
	"errors"
	"math/rand"

	"kgexplore/internal/card"
	"kgexplore/internal/core"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
)

// ErrDistinctOverlay reports a COUNT(DISTINCT) plan on the overlay walker.
// Distinct estimation over the merged view would need tombstone-aware
// per-value dedup reconciliation across the layers; rather than risk a
// silently biased estimate, the walker refuses and callers route distinct
// queries to the exact path (Exact), which enumerates the merged view —
// the same "exact, never biased" policy the stratified sampler applies to
// DISTINCT (see DESIGN's fallback taxonomy).
var ErrDistinctOverlay = errors.New(
	"live: COUNT(DISTINCT) is not estimated over the overlay; use the exact path")

// WalkerOptions configure one overlay walker.
type WalkerOptions struct {
	// Threshold is the Audit Join tipping point with core.Options
	// semantics: suffix estimates at or below it switch the walk to the
	// exact finish. Negative never tips (pure Wander Join); zero means
	// core.DefaultThreshold.
	Threshold float64
	// Seed seeds the walker's private random source.
	Seed int64
	// Estimator drives the tipping oracle; nil selects span statistics
	// summed over base+delta. (Adjacent-step widths always come from the
	// exact merged resolver regardless.)
	Estimator card.Estimator
}

// Walker runs Audit Join walks over an overlay View: roots sample
// uniformly from the merged root span (base incl. tombstones + delta, so
// d₁ is the merged width), later steps resolve and sample through the
// two-layer resolver, and a draw that lands on a tombstoned triple rejects
// the walk — Horvitz–Thompson-unbiased for the live triple set. Tipped
// walks finish exactly by merged-view enumeration memoized per walker.
//
// A Walker is an exec.Stepper; it is not safe for concurrent use. It holds
// the View captured at creation: estimates refer to that generation, which
// is exactly the snapshot-consistency a chart run wants under ingest.
type Walker struct {
	v      *View
	pl     *query.Plan
	res    *resolver
	oracle card.Suffix
	thresh float64
	rng    *rand.Rand
	acc    *wj.Acc

	// b is the walk binding buffer, gb the suffix-enumeration scratch.
	b  query.Bindings
	gb query.Bindings

	// iface[i] lists the interface variables of boundary i (ctj's
	// cache-key discipline): bound before i, used at or after i.
	iface [][]query.Var
	cache map[aggKey][]suffixEntry

	rootSpan spanPair
	rootLen  int

	perGroup   map[rdf.ID]float64
	perGroupND map[rdf.ID]numDen

	tipped int64
	diag   core.TipDiag
}

type numDen struct{ num, den float64 }

// maxIfaceVals bounds the fixed-size suffix cache key; walks whose
// interface does not fit compute uncached.
const maxIfaceVals = 8

type aggKey struct {
	step int8
	vals [maxIfaceVals]rdf.ID
}

type suffixEntry struct {
	a, b rdf.ID
	n    int64
}

// NewWalker creates an overlay walker for the view. Distinct plans fail
// with ErrDistinctOverlay.
func NewWalker(v *View, pl *query.Plan, opts WalkerOptions) (*Walker, error) {
	if pl.Query.Distinct {
		return nil, ErrDistinctOverlay
	}
	thresh := opts.Threshold
	if thresh == 0 {
		thresh = core.DefaultThreshold
	}
	res := newResolver(v, pl)
	est := opts.Estimator
	if est == nil {
		est = card.NewSpanStats(v.stores()...)
	}
	w := &Walker{
		v:          v,
		pl:         pl,
		res:        res,
		oracle:     est.NewSuffix(pl, resolverWidth{res}),
		thresh:     thresh,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		acc:        wj.NewAcc(),
		b:          pl.NewBindings(),
		gb:         pl.NewBindings(),
		cache:      make(map[aggKey][]suffixEntry),
		perGroup:   make(map[rdf.ID]float64),
		perGroupND: make(map[rdf.ID]numDen),
	}
	// The root step has no join variables, so its merged span is constant.
	w.rootSpan, _ = res.resolve(0, w.b)
	w.rootLen = w.rootSpan.total
	w.iface = ifaceVars(pl)
	return w, nil
}

// ifaceVars computes ctj's interface-variable sets per step boundary.
func ifaceVars(pl *query.Plan) [][]query.Var {
	n := len(pl.Steps)
	firstBound := make([]int, pl.NumVars())
	lastUse := make([]int, pl.NumVars())
	for v := range firstBound {
		firstBound[v], lastUse[v] = -1, -1
	}
	for i, st := range pl.Steps {
		for _, a := range []query.Atom{st.Pattern.S, st.Pattern.P, st.Pattern.O} {
			if a.IsVar() {
				if firstBound[a.Var] == -1 {
					firstBound[a.Var] = i
				}
				lastUse[a.Var] = i
			}
		}
		// A filter anchored at step i reads its variables at i; without this
		// the variable drops out of intermediate interfaces and the suffix
		// cache serves aggregates across bindings the filter distinguishes.
		for _, fi := range st.Filters {
			for _, v := range pl.Query.Filters[fi].Vars() {
				if lastUse[v] < i {
					lastUse[v] = i
				}
			}
		}
	}
	iface := make([][]query.Var, n+1)
	for i := 0; i <= n; i++ {
		for v := 0; v < pl.NumVars(); v++ {
			if firstBound[v] >= 0 && firstBound[v] < i && lastUse[v] >= i {
				iface[i] = append(iface[i], query.Var(v))
			}
		}
	}
	return iface
}

// Step performs one walk.
func (w *Walker) Step() {
	w.acc.N++
	if w.rootLen == 0 {
		w.acc.Rejected++
		return
	}
	b := w.b
	b.Reset()
	st0 := &w.pl.Steps[0]
	prodD := 1.0
	if st0.Kind != query.AccessMembership {
		t, live := w.res.sample(0, w.rootSpan, w.rng)
		if !live {
			w.acc.Rejected++
			return
		}
		st0.Bind(t, b)
		prodD = float64(w.rootLen)
		// A failed FILTER rejects the walk — a zero-weight HT draw, the same
		// mechanism as a tombstone hit — so estimates stay unbiased for the
		// filtered live counts.
		if len(st0.Filters) > 0 && !w.pl.StepFiltersOK(0, w.v, b) {
			w.acc.Rejected++
			return
		}
	}
	last := len(w.pl.Steps) - 1
	for i := 0; ; i++ {
		if i > 0 {
			st := &w.pl.Steps[i]
			sp, ok := w.res.resolve(i, b)
			if !ok {
				w.acc.Rejected++
				return
			}
			if st.Kind != query.AccessMembership {
				t, live := w.res.sample(i, sp, w.rng)
				if !live {
					w.acc.Rejected++
					return
				}
				st.Bind(t, b)
				prodD *= float64(sp.total)
				if len(st.Filters) > 0 && !w.pl.StepFiltersOK(i, w.v, b) {
					w.acc.Rejected++
					return
				}
			}
		}
		if i == last {
			w.finish(i, b, prodD, 0, false)
			return
		}
		if est := w.oracle.Estimate(i, b); est <= w.thresh {
			w.tipped++
			w.finish(i, b, prodD, est, true)
			return
		}
	}
}

// finish completes a walk exactly: enumerate (memoized) the live suffix
// aggregation beyond step i and credit each group scaled by the prefix's
// inverse probability ∏ d_j.
func (w *Walker) finish(i int, b query.Bindings, prodD, tipEst float64, tipped bool) {
	agg := w.suffixAgg(i, b)
	if tipped {
		var actual float64
		for _, e := range agg {
			actual += float64(e.n)
		}
		w.diag.Observe(tipEst, actual)
	}
	if len(agg) == 0 {
		w.acc.Rejected++
		return
	}
	switch w.pl.Query.Agg {
	case query.AggSum:
		clear(w.perGroup)
		for _, e := range agg {
			if v, ok := w.v.Numeric(e.b); ok {
				w.perGroup[e.a] += v * float64(e.n) * prodD
			}
		}
		for a, x := range w.perGroup {
			w.acc.Add(a, x)
		}
	case query.AggAvg:
		clear(w.perGroupND)
		for _, e := range agg {
			if v, ok := w.v.Numeric(e.b); ok {
				cur := w.perGroupND[e.a]
				cur.num += v * float64(e.n) * prodD
				cur.den += float64(e.n) * prodD
				w.perGroupND[e.a] = cur
			}
		}
		for a, x := range w.perGroupND {
			w.acc.AddRatio(a, x.num, x.den)
		}
	default: // COUNT
		clear(w.perGroup)
		for _, e := range agg {
			w.perGroup[e.a] += float64(e.n) * prodD
		}
		for a, x := range w.perGroup {
			w.acc.Add(a, x)
		}
	}
}

func (w *Walker) suffixAgg(i int, b query.Bindings) []suffixEntry {
	k, ok := w.aggKeyAt(i+1, b)
	if !ok {
		return w.computeSuffixAgg(i, b)
	}
	if agg, hit := w.cache[k]; hit {
		return agg
	}
	agg := w.computeSuffixAgg(i, b)
	w.cache[k] = agg
	return agg
}

func (w *Walker) aggKeyAt(step int, b query.Bindings) (aggKey, bool) {
	q := w.pl.Query
	k := aggKey{step: int8(step)}
	i := 0
	for _, v := range w.iface[step] {
		if i >= maxIfaceVals {
			return k, false
		}
		k.vals[i] = b[v]
		i++
	}
	for _, v := range []query.Var{q.Alpha, q.Beta} {
		if i >= maxIfaceVals {
			return k, false
		}
		if v != query.NoVar {
			k.vals[i] = b[v]
		} else {
			k.vals[i] = rdf.NoID
		}
		i++
	}
	for ; i < maxIfaceVals; i++ {
		k.vals[i] = rdf.NoID
	}
	return k, true
}

func (w *Walker) computeSuffixAgg(i int, b query.Bindings) []suffixEntry {
	q := w.pl.Query
	copy(w.gb, b)
	gb := w.gb
	type akey struct{ a, b rdf.ID }
	idx := make(map[akey]int)
	var out []suffixEntry
	_ = w.res.enumerate(i+1, gb, func() error {
		a, bb := rdf.NoID, rdf.NoID
		if q.Alpha != query.NoVar {
			a = gb[q.Alpha]
		}
		if q.Beta != query.NoVar {
			bb = gb[q.Beta]
		}
		ak := akey{a, bb}
		if j, ok := idx[ak]; ok {
			out[j].n++
			return nil
		}
		idx[ak] = len(out)
		out = append(out, suffixEntry{a: a, b: bb, n: 1})
		return nil
	})
	return out
}

// Walks returns the number of walks performed; with Step and Snapshot it
// makes the Walker an exec.Stepper.
func (w *Walker) Walks() int64 { return w.acc.N }

// RootCard returns the walker's root population size — the number of live
// root triples its walks draw from.
func (w *Walker) RootCard() int64 { return int64(w.rootLen) }

// Snapshot returns the running estimates with 0.95 confidence intervals.
func (w *Walker) Snapshot() wj.Result { return w.acc.Snapshot(stats.Z95) }

// Acc exposes the accumulator.
func (w *Walker) Acc() *wj.Acc { return w.acc }

// Tipped returns how many walks switched to the exact finish.
func (w *Walker) Tipped() int64 { return w.tipped }

// TipDiag returns the walker's estimate-vs-actual tipping diagnostics.
func (w *Walker) TipDiag() core.TipDiag { return w.diag }

// View returns the view the walker was created over.
func (w *Walker) View() *View { return w.v }
