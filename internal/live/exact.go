package live

import (
	"context"

	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/wj"
)

// exactCheckEvery is the number of visited result rows between context
// checks during exact enumeration.
const exactCheckEvery = 1 << 13

// Exact computes the exact per-group aggregate over the view's LIVE triple
// set by merged-view enumeration (tombstones filtered), matching the
// aggregation semantics of the single-store exact engines: COUNT counts
// matches, SUM/AVG aggregate numeric β values (non-numeric rows skipped),
// and DISTINCT counts distinct (group, β) pairs — the exact path distinct
// overlay queries are routed to (see ErrDistinctOverlay).
func Exact(ctx context.Context, v *View, pl *query.Plan) (map[rdf.ID]float64, error) {
	r := newResolver(v, pl)
	q := pl.Query
	b := pl.NewBindings()
	out := make(map[rdf.ID]float64)
	counts := make(map[rdf.ID]float64)
	var seen map[[2]rdf.ID]struct{}
	if q.Distinct {
		seen = make(map[[2]rdf.ID]struct{})
	}
	rows := 0
	err := r.enumerate(0, b, func() error {
		rows++
		if rows&(exactCheckEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		a := wj.GlobalGroup
		if q.Alpha != query.NoVar {
			a = b[q.Alpha]
		}
		switch q.Agg {
		case query.AggSum, query.AggAvg:
			if x, ok := v.Numeric(b[q.Beta]); ok {
				out[a] += x
				counts[a]++
			}
		default:
			if q.Distinct {
				k := [2]rdf.ID{a, b[q.Beta]}
				if _, dup := seen[k]; dup {
					return nil
				}
				seen[k] = struct{}{}
			}
			out[a]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if q.Agg == query.AggAvg {
		for a := range out {
			out[a] /= counts[a]
		}
	}
	return out, nil
}
