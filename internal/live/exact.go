package live

import (
	"context"

	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/wj"
)

// exactCheckEvery is the number of visited result rows between context
// checks during exact enumeration.
const exactCheckEvery = 1 << 13

// Exact computes the exact per-group aggregate over the view's LIVE triple
// set by merged-view enumeration (tombstones filtered), matching the
// aggregation semantics of the single-store exact engines: COUNT counts
// matches, SUM/AVG aggregate numeric β values (non-numeric rows skipped),
// DISTINCT counts distinct (group, β) pairs — the exact path distinct
// overlay queries are routed to (see ErrDistinctOverlay) — and FILTER
// predicates prune assignments during the enumeration.
func Exact(ctx context.Context, v *View, pl *query.Plan) (map[rdf.ID]float64, error) {
	q := pl.Query
	out := make(map[rdf.ID]float64)
	counts := make(map[rdf.ID]float64)
	var seen map[[2]rdf.ID]struct{}
	if q.Distinct {
		seen = make(map[[2]rdf.ID]struct{})
	}
	if err := exactInto(ctx, v, pl, out, counts, seen); err != nil {
		return nil, err
	}
	if q.Agg == query.AggAvg {
		for a := range out {
			out[a] /= counts[a]
		}
	}
	return out, nil
}

// ExactUnion evaluates a compiled union exactly over the live view under
// SPARQL bag semantics: COUNT and SUM add across branches, AVG is the ratio
// of the summed per-branch numerators and denominators, and COUNT(DISTINCT)
// deduplicates (group, β) pairs ACROSS branches via one shared value set.
func ExactUnion(ctx context.Context, v *View, up *query.UnionPlan) (map[rdf.ID]float64, error) {
	q := up.Query
	out := make(map[rdf.ID]float64)
	counts := make(map[rdf.ID]float64)
	var seen map[[2]rdf.ID]struct{}
	if q.Distinct() {
		seen = make(map[[2]rdf.ID]struct{})
	}
	for _, pl := range up.Plans {
		if err := exactInto(ctx, v, pl, out, counts, seen); err != nil {
			return nil, err
		}
	}
	if q.Agg() == query.AggAvg {
		for a := range out {
			if d := counts[a]; d > 0 {
				out[a] /= d
			}
		}
	}
	return out, nil
}

// exactInto enumerates one plan and accumulates into the caller's maps:
// sums (or counts) into out, AVG denominators into counts, and the distinct
// (group, β) dedup set into seen (nil when the query is not DISTINCT).
func exactInto(ctx context.Context, v *View, pl *query.Plan, out, counts map[rdf.ID]float64, seen map[[2]rdf.ID]struct{}) error {
	r := newResolver(v, pl)
	q := pl.Query
	b := pl.NewBindings()
	rows := 0
	return r.enumerate(0, b, func() error {
		rows++
		if rows&(exactCheckEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		a := wj.GlobalGroup
		if q.Alpha != query.NoVar {
			a = b[q.Alpha]
		}
		switch q.Agg {
		case query.AggSum, query.AggAvg:
			if x, ok := v.Numeric(b[q.Beta]); ok {
				out[a] += x
				counts[a]++
			}
		default:
			if seen != nil {
				k := [2]rdf.ID{a, b[q.Beta]}
				if _, dup := seen[k]; dup {
					return nil
				}
				seen[k] = struct{}{}
			}
			out[a]++
		}
		return nil
	})
}
