package live

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"kgexplore/internal/ctj"
	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// TestRandomInterleavingEquivalence is the overlay's property test: ANY
// randomized sequence of Add / Delete / Snapshot(view) / Compact must leave
// the overlay answering exact CTJ queries IDENTICALLY to a from-scratch
// index.Build of the final triple set, and walk estimates must cover the
// exact answer within their confidence intervals. Runs under -race in CI
// (the ingest loop below also exercises concurrent views).
func TestRandomInterleavingEquivalence(t *testing.T) {
	for trial := int64(0); trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			g := testkit.RandomGraph(100+trial, 30, 3, 25, 400)
			baseStore, rest := splitGraph(g, 0.5)
			s := mustStore(t, baseStore, Options{})

			model := make(map[rdf.Triple]bool)
			for _, tr := range baseStore.Triples(index.SPO) {
				model[tr] = true
			}
			pool := append([]rdf.Triple(nil), g.Triples...)

			rng := rand.New(rand.NewSource(1000 + trial))
			nextHeldOut := 0
			for i := 0; i < 300; i++ {
				switch op := rng.Intn(10); {
				case op < 4: // add: held-out first, then random re-adds
					tr := pool[rng.Intn(len(pool))]
					if nextHeldOut < len(rest) {
						tr = rest[nextHeldOut]
						nextHeldOut++
					}
					if err := s.Add(tr); err != nil {
						t.Fatal(err)
					}
					model[tr] = true
				case op < 7: // delete a random pool triple (live or not)
					tr := pool[rng.Intn(len(pool))]
					if err := s.Delete(tr); err != nil {
						t.Fatal(err)
					}
					delete(model, tr)
				case op < 9: // snapshot: the captured view must stay coherent
					v := s.View()
					if v.NumTriples() != len(model) {
						t.Fatalf("op %d: view has %d triples, model %d", i, v.NumTriples(), len(model))
					}
				default: // compact
					if _, _, err := s.CompactInMemory(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Flush any remaining held-out triples so the stream is fully applied.
			for ; nextHeldOut < len(rest); nextHeldOut++ {
				if err := s.Add(rest[nextHeldOut]); err != nil {
					t.Fatal(err)
				}
				model[rest[nextHeldOut]] = true
			}

			// From-scratch rebuild of the final triple set.
			final := &rdf.Graph{Dict: g.Dict}
			for tr := range model {
				final.Triples = append(final.Triples, tr)
			}
			final.Dedup()
			rebuilt := index.Build(final)

			v := s.View()
			if v.NumTriples() != rebuilt.NumTriples() {
				t.Fatalf("live %d triples, rebuild %d", v.NumTriples(), rebuilt.NumTriples())
			}

			queries := []*query.Query{
				testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false),
				testkit.ChainQuery(g, []rdf.ID{31, 32}, true, false),
				testkit.ChainQuery(g, []rdf.ID{30, 31, 32}, false, false),
			}
			avg := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false)
			avg.Agg = query.AggAvg
			queries = append(queries, avg)

			for qi, q := range queries {
				pl, err := query.Compile(q)
				if err != nil {
					t.Fatal(err)
				}
				want := ctj.Evaluate(rebuilt, pl)
				got, err := Exact(context.Background(), v, pl)
				if err != nil {
					t.Fatal(err)
				}
				if !testkit.MapsEqual(got, want, 1e-6) {
					t.Fatalf("query %d: overlay exact %v, rebuild ctj %v", qi, got, want)
				}

				// Walk estimates: pure sampling (no tipping), generous walk
				// budget, exact answer within 5 CI half-widths per group (a
				// ~1e-6 flake probability bound, deterministic seed anyway).
				w, err := NewWalker(v, pl, WalkerOptions{Threshold: -1, Seed: 7 + trial})
				if err != nil {
					t.Fatal(err)
				}
				exec.RunN(w, 20000)
				res := w.Snapshot()
				for a, wantV := range want {
					est, ci := res.Estimates[a], res.CI[a]
					if ci == 0 {
						ci = math.Max(1, wantV) // degenerate group: allow slack
					}
					if math.Abs(est-wantV) > 5*ci {
						t.Fatalf("query %d group %d: estimate %.3f ± %.3f, exact %.3f",
							qi, a, est, res.CI[a], wantV)
					}
				}
			}
		})
	}
}

// TestLiveFilterEquivalence: FILTER semantics survive the delta overlay —
// the merged-view exact enumeration matches the oracle on the live triple
// set, and the overlay walker treats failed filters as rejections (unbiased
// for the filtered live counts, same mechanism as tombstone hits).
func TestLiveFilterEquivalence(t *testing.T) {
	g := testkit.RandomGraph(21, 30, 3, 25, 400)
	baseStore, rest := splitGraph(g, 0.5)
	s := mustStore(t, baseStore, Options{})
	for _, tr := range rest {
		if err := s.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a slice of base triples so tombstone rejection composes with
	// filter rejection in the same walks.
	baseTriples := g.Triples[:len(g.Triples)-len(rest)]
	deleted := make(map[rdf.Triple]bool)
	for i := 0; i < len(baseTriples); i += 7 {
		if err := s.Delete(baseTriples[i]); err != nil {
			t.Fatal(err)
		}
		deleted[baseTriples[i]] = true
	}
	final := &rdf.Graph{Dict: g.Dict}
	for _, tr := range g.Triples {
		if !deleted[tr] {
			final.Triples = append(final.Triples, tr)
		}
	}
	final.Dedup()

	q := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false)
	q.Filters = []query.Filter{{Op: query.CmpGt, L: query.EVar(q.Beta), R: query.ENum(5)}}
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	want := testkit.BruteForce(final, q)
	v := s.View()
	got, err := Exact(context.Background(), v, pl)
	if err != nil {
		t.Fatal(err)
	}
	if !testkit.MapsEqual(got, want, 1e-9) {
		t.Fatalf("overlay filtered exact %v, oracle %v", got, want)
	}

	total := 0.0
	for _, x := range want {
		total += x
	}
	w, err := NewWalker(v, pl, WalkerOptions{Threshold: -1, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	exec.RunN(w, 40000)
	res := w.Snapshot()
	est := 0.0
	for _, x := range res.Estimates {
		est += x
	}
	if tol := 0.25*total + 2; math.Abs(est-total) > tol {
		t.Errorf("filtered overlay estimate %.1f vs exact %.1f", est, total)
	}
	if res.Rejected == 0 {
		t.Error("filtered overlay run recorded no rejections")
	}
}

// TestConcurrentIngestAndWalks drives sustained Apply batches while reader
// goroutines run walkers and exact enumerations over captured views — the
// -race workout for the dict lock, the atomic view swap, and compaction
// concurrent with both.
func TestConcurrentIngestAndWalks(t *testing.T) {
	g := testkit.RandomGraph(55, 30, 3, 25, 400)
	baseStore, rest := splitGraph(g, 0.5)
	s := mustStore(t, baseStore, Options{})
	q := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}

	// Deletes draw from the base region only (rest is disjoint from it), so
	// the final state is independent of batch interleaving.
	baseTriples := g.Triples[:len(g.Triples)-len(rest)]

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer: batches of held-out adds + scattered deletes
		defer wg.Done()
		defer close(stop)
		for i := 0; i < len(rest); i += 20 {
			end := i + 20
			if end > len(rest) {
				end = len(rest)
			}
			ops := make([]Op, 0, 21)
			for _, tr := range rest[i:end] {
				ops = append(ops, Op{T: tr})
			}
			ops = append(ops, Op{Del: true, T: baseTriples[i%len(baseTriples)]})
			if err := s.Apply(ops); err != nil {
				t.Error(err)
				return
			}
			// New terms intern concurrently with readers resolving them.
			s.dict.Intern(rdf.NewIRI(fmt.Sprintf("ingest-%d", i)))
		}
	}()
	wg.Add(1)
	go func() { // background compactions
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := s.CompactInMemory(); err != nil && err != ErrCompacting {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.View()
				w, err := NewWalker(v, pl, WalkerOptions{Seed: seed})
				if err != nil {
					t.Error(err)
					return
				}
				exec.RunN(w, 200)
				if _, err := Exact(context.Background(), v, pl); err != nil {
					t.Error(err)
					return
				}
				_ = s.Stats()
			}
		}(int64(r))
	}
	wg.Wait()

	// After the dust settles the overlay must equal the from-scratch build.
	deleted := make(map[rdf.Triple]bool)
	for i := 0; i < len(rest); i += 20 {
		deleted[baseTriples[i%len(baseTriples)]] = true
	}
	final := &rdf.Graph{Dict: g.Dict}
	for _, tr := range g.Triples {
		if !deleted[tr] {
			final.Triples = append(final.Triples, tr)
		}
	}
	want := ctj.Evaluate(index.Build(final), pl)
	got, err := Exact(context.Background(), s.View(), pl)
	if err != nil {
		t.Fatal(err)
	}
	if !testkit.MapsEqual(got, want, 1e-9) {
		t.Fatalf("after concurrent ingest: overlay %v, rebuild %v", got, want)
	}
}
