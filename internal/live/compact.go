package live

import (
	"fmt"
	"io"
	"time"

	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
	"kgexplore/internal/snap"
)

// CompactResult reports one compaction.
type CompactResult struct {
	// Path of the fresh .kgs snapshot now serving as the base.
	Path string
	// Build is the external-build's spill telemetry.
	Build snap.ExtBuildStats
	// Retired is the PREVIOUS base's closer (nil if it had none). It must
	// not be closed until every View referencing the old base has drained —
	// the server hands it to the refcounted epoch machinery; standalone
	// callers close it once their readers are done.
	Retired io.Closer
	// ResidualAdds/ResidualTombs count the overlay entries that survived
	// adoption: mutations applied while the compaction was building.
	ResidualAdds  int
	ResidualTombs int
	Millis        int64
}

// Compact folds the current view into a fresh .kgs snapshot at path via
// snap.BuildExternal, mmap-loads it, and adopts it as the new base. Ingest
// proceeds concurrently: batches applied while the build streams stay in
// the overlay (reconciled against the new base on adoption), and readers
// keep their old Views until they finish. At most one compaction runs at a
// time (ErrCompacting otherwise). Never called on the write path — this is
// the background job behind `kgserver -live`.
func (s *Store) Compact(path string, o snap.ExtBuildOptions) (CompactResult, error) {
	start := time.Now()
	v, err := s.beginCompact()
	if err != nil {
		return CompactResult{}, err
	}
	feed := func(emit func(rdf.Triple) error) (*rdf.Dict, error) {
		if err := v.Triples(emit); err != nil {
			return nil, err
		}
		return s.dict, nil
	}
	meta := &snap.Meta{Source: fmt.Sprintf("live-compact gen %d", v.Gen()), CreatedUnix: time.Now().Unix()}
	bs, err := snap.BuildExternalFile(path, feed, meta, o)
	if err != nil {
		s.abortCompact(fmt.Errorf("live: compaction build: %w", err))
		return CompactResult{}, err
	}
	ld, err := snap.LoadFile(path, snap.Options{Mode: snap.ModeAuto})
	if err != nil {
		s.abortCompact(fmt.Errorf("live: compaction load: %w", err))
		return CompactResult{}, err
	}
	res := s.finishCompact(ld.Store, ld)
	res.Path = path
	res.Build = bs
	res.Millis = time.Since(start).Milliseconds()
	s.mu.Lock()
	s.lastCompactMillis = res.Millis
	s.mu.Unlock()
	return res, nil
}

// CompactInMemory folds the current view into a freshly built in-memory
// index.Store and adopts it — the dynamic shim's rebuild (and a test
// convenience). The write path of ingest never calls this.
func (s *Store) CompactInMemory() (*index.Store, CompactResult, error) {
	v, err := s.beginCompact()
	if err != nil {
		return nil, CompactResult{}, err
	}
	g := &rdf.Graph{Dict: s.dict}
	g.Triples = make([]rdf.Triple, 0, v.NumTriples())
	_ = v.Triples(func(t rdf.Triple) error {
		g.Triples = append(g.Triples, t)
		return nil
	})
	nb := index.Build(g)
	res := s.finishCompact(nb, nil)
	return nb, res, nil
}

// beginCompact captures the view to fold and opens the reconciliation
// window: until finishCompact or abortCompact, every mutated triple is
// recorded in s.touched.
func (s *Store) beginCompact() (*View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capturing {
		return nil, ErrCompacting
	}
	s.capturing = true
	s.touched = make(map[rdf.Triple]struct{})
	return s.cur.Load(), nil
}

func (s *Store) abortCompact(err error) {
	s.mu.Lock()
	s.capturing = false
	s.touched = nil
	s.lastErr = err
	s.mu.Unlock()
}

// finishCompact adopts newBase and recomputes the residual overlay. The
// standard recompute — keep adds the new base lacks, keep tombstones the
// new base still contains — is correct for every overlay entry that still
// exists. Entries REMOVED during the build window need the touched-set
// reconciliation: a pending add that was captured into the new base and
// then cancelled must become a tombstone, and a tombstoned base triple
// that was captured out and then resurrected must become an add. For each
// touched triple the rule is simply "make the new overlay agree with
// current liveness".
func (s *Store) finishCompact(newBase *index.Store, newCloser io.Closer) CompactResult {
	s.mu.Lock()
	defer s.mu.Unlock()

	liveNow := func(t rdf.Triple) bool {
		if _, pending := s.addSet[t]; pending {
			return true
		}
		if s.base.Contains(t) {
			_, dead := s.tombs[t]
			return !dead
		}
		return false
	}

	newAdds := make([]rdf.Triple, 0, len(s.adds))
	newAddSet := make(map[rdf.Triple]int, len(s.adds))
	for _, t := range s.adds {
		if newBase.Contains(t) {
			continue
		}
		newAddSet[t] = len(newAdds)
		newAdds = append(newAdds, t)
	}
	newTombs := make(map[rdf.Triple]struct{})
	for t := range s.tombs {
		if newBase.Contains(t) {
			newTombs[t] = struct{}{}
		}
	}
	for t := range s.touched {
		live := liveNow(t)
		inNew := newBase.Contains(t)
		switch {
		case live && !inNew:
			if _, ok := newAddSet[t]; !ok {
				newAddSet[t] = len(newAdds)
				newAdds = append(newAdds, t)
			}
			delete(newTombs, t)
		case !live && inNew:
			if i, ok := newAddSet[t]; ok {
				last := len(newAdds) - 1
				newAdds[i] = newAdds[last]
				newAddSet[newAdds[i]] = i
				newAdds = newAdds[:last]
				delete(newAddSet, t)
			}
			newTombs[t] = struct{}{}
		case live && inNew:
			delete(newTombs, t)
		}
	}

	retired := s.baseCloser
	s.base = newBase
	s.baseCloser = newCloser
	s.adds, s.addSet, s.tombs = newAdds, newAddSet, newTombs
	s.capturing = false
	s.touched = nil
	s.compactions++

	// Publish the adopted generation. publishLocked reuses the previous
	// view's delta only when clean; adoption always rebuilds.
	s.publishLocked(true)

	if s.wal != nil {
		recs := make([]DecodedOp, 0, len(newAdds)+len(newTombs))
		for _, t := range newAdds {
			recs = append(recs, DecodedOp{S: s.dict.Term(t.S), P: s.dict.Term(t.P), O: s.dict.Term(t.O)})
		}
		for t := range newTombs {
			recs = append(recs, DecodedOp{Del: true, S: s.dict.Term(t.S), P: s.dict.Term(t.P), O: s.dict.Term(t.O)})
		}
		if err := s.wal.rewrite(recs); err != nil {
			// The old log still replays to a superset of the overlay whose
			// re-application is idempotent, so a failed rewrite loses no
			// durability — record it for /healthz and move on.
			s.lastErr = fmt.Errorf("live: WAL rewrite after compaction: %w", err)
		} else {
			s.lastErr = nil
		}
	} else {
		s.lastErr = nil
	}
	return CompactResult{
		Retired:       retired,
		ResidualAdds:  len(newAdds),
		ResidualTombs: len(newTombs),
	}
}
