package live

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"kgexplore/internal/rdf"
)

// The write-ahead log is an append-only file of checksummed batch records:
//
//	header:  "KGWL" | u32 version
//	record:  u32 payload length | u32 CRC-32C(payload) | payload
//	payload: u32 nops | nops × op
//	op:      u8 flags (bit0 = delete) | term × 3
//	term:    u8 kind | u32 len | value bytes | u32 len | datatype bytes |
//	         u32 len | lang bytes
//
// Terms are stored DECODED: dictionary IDs are assigned in first-seen order
// and a restarted process reloads the base snapshot's dictionary, which
// does not contain terms first seen via ingest — replay re-interns. A batch
// is appended (and by default fsynced) before Apply acknowledges it, so
// every acknowledged batch survives a crash; replay stops at the first
// record whose length or checksum does not hold (a torn tail from a crash
// mid-append) and truncates the file there. After a compaction folds the
// overlay into a new base, the log is rewritten to hold only the residual
// ops (tmp file + rename, so a crash mid-rewrite keeps the old log).
type wal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	noSync  bool
	records int64
	bytes   int64
}

const walMagic = "KGWL"
const walVersion = 1

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// openWAL opens (creating if absent) the log at path and replays its
// records, returning the decoded batches in append order.
func openWAL(path string, noSync bool) (*wal, [][]DecodedOp, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &wal{f: f, path: path, noSync: noSync}
	batches, good, err := replayWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if good == 0 {
		// Fresh (or fully torn) log: stamp the header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, err
		}
		var hdr [8]byte
		copy(hdr[:4], walMagic)
		binary.LittleEndian.PutUint32(hdr[4:], walVersion)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		good = int64(len(hdr))
	} else if fi, err := f.Stat(); err == nil && fi.Size() > good {
		// Torn tail: drop it so the next append starts at a clean record
		// boundary.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.bytes = good
	w.records = int64(len(batches))
	return w, batches, nil
}

// replayWAL reads records until EOF or the first corrupt/torn record,
// returning the decoded batches and the byte offset of the last good
// record. A missing or foreign header yields good = 0 (the file is treated
// as fresh).
func replayWAL(f *os.File) ([][]DecodedOp, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, 0, nil // empty/short file: fresh log
	}
	if string(hdr[:4]) != walMagic || binary.LittleEndian.Uint32(hdr[4:]) != walVersion {
		return nil, 0, fmt.Errorf("live: %s is not a v%d WAL", f.Name(), walVersion)
	}
	good := int64(len(hdr))
	var batches [][]DecodedOp
	var rec [8]byte
	for {
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			return batches, good, nil // clean EOF or torn length word
		}
		n := binary.LittleEndian.Uint32(rec[:4])
		sum := binary.LittleEndian.Uint32(rec[4:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return batches, good, nil // torn payload
		}
		if crc32.Checksum(payload, walCRC) != sum {
			return batches, good, nil // corrupt record: stop replay here
		}
		ops, err := decodeBatch(payload)
		if err != nil {
			return batches, good, nil // undecodable yet checksummed: treat as tail
		}
		batches = append(batches, ops)
		good += int64(len(rec)) + int64(n)
	}
}

func appendTerm(buf []byte, t rdf.Term) []byte {
	buf = append(buf, byte(t.Kind))
	for _, s := range []string{t.Value, t.Datatype, t.Lang} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

func readTerm(p []byte) (rdf.Term, []byte, error) {
	if len(p) < 1 {
		return rdf.Term{}, nil, io.ErrUnexpectedEOF
	}
	t := rdf.Term{Kind: rdf.TermKind(p[0])}
	p = p[1:]
	for i := 0; i < 3; i++ {
		if len(p) < 4 {
			return rdf.Term{}, nil, io.ErrUnexpectedEOF
		}
		n := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if n < 0 || len(p) < n {
			return rdf.Term{}, nil, io.ErrUnexpectedEOF
		}
		s := string(p[:n])
		p = p[n:]
		switch i {
		case 0:
			t.Value = s
		case 1:
			t.Datatype = s
		default:
			t.Lang = s
		}
	}
	return t, p, nil
}

func encodeBatch(ops []DecodedOp) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(ops)))
	for _, op := range ops {
		var flags byte
		if op.Del {
			flags = 1
		}
		buf = append(buf, flags)
		buf = appendTerm(buf, op.S)
		buf = appendTerm(buf, op.P)
		buf = appendTerm(buf, op.O)
	}
	return buf
}

func decodeBatch(p []byte) ([]DecodedOp, error) {
	if len(p) < 4 {
		return nil, io.ErrUnexpectedEOF
	}
	n := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	ops := make([]DecodedOp, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < 1 {
			return nil, io.ErrUnexpectedEOF
		}
		op := DecodedOp{Del: p[0]&1 != 0}
		p = p[1:]
		var err error
		if op.S, p, err = readTerm(p); err != nil {
			return nil, err
		}
		if op.P, p, err = readTerm(p); err != nil {
			return nil, err
		}
		if op.O, p, err = readTerm(p); err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("live: %d trailing bytes in WAL batch", len(p))
	}
	return ops, nil
}

// append writes one batch record and (unless NoSync) fsyncs before
// returning — the acknowledgement barrier.
func (w *wal) append(ops []DecodedOp) error {
	payload := encodeBatch(ops)
	rec := make([]byte, 0, 8+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, walCRC))
	rec = append(rec, payload...)
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(rec); err != nil {
		return err
	}
	if !w.noSync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	w.records++
	w.bytes += int64(len(rec))
	return nil
}

// rewrite atomically replaces the log's contents with a single batch of
// residual ops (post-compaction: the overlay entries the new base does not
// cover). An empty batch leaves just the header.
func (w *wal) rewrite(ops []DecodedOp) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	tmp, err := os.CreateTemp(filepath.Dir(w.path), ".wal-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	var hdr [8]byte
	copy(hdr[:4], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:], walVersion)
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return err
	}
	records, bytes := int64(0), int64(len(hdr))
	if len(ops) > 0 {
		payload := encodeBatch(ops)
		rec := make([]byte, 0, 8+len(payload))
		rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
		rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, walCRC))
		rec = append(rec, payload...)
		if _, err := tmp.Write(rec); err != nil {
			tmp.Close()
			return err
		}
		records, bytes = 1, bytes+int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), w.path); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	w.f.Close()
	w.f = f
	w.records, w.bytes = records, bytes
	return nil
}

func (w *wal) stats() (records, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records, w.bytes
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
