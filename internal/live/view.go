package live

import (
	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
)

// View is one immutable generation of the overlay: the base store, the
// delta store indexing the pending adds (nil when there are none), and the
// tombstone set marking base triples that have been deleted (nil when
// empty). Apply publishes a fresh View per batch — maps and stores are
// never mutated after publication, so a View taken at the start of a run
// stays consistent for its whole lifetime, however long ingest keeps going.
//
// The live triple set of a view is (base ∖ tombs) ∪ delta, with the
// invariants delta ∩ base = ∅ and tombs ⊆ base maintained by Store.Apply.
type View struct {
	base  *index.Store
	delta *index.Store
	tombs map[rdf.Triple]struct{}
	gen   uint64
}

// Base returns the immutable base store.
func (v *View) Base() *index.Store { return v.base }

// Delta returns the delta store over pending adds, nil when none are
// pending.
func (v *View) Delta() *index.Store { return v.delta }

// Gen returns the view's generation number (monotonic per Store).
func (v *View) Gen() uint64 { return v.gen }

// Dict returns the shared term dictionary.
func (v *View) Dict() *rdf.Dict { return v.base.Dict() }

// DeltaAdds returns the number of pending insertions.
func (v *View) DeltaAdds() int {
	if v.delta == nil {
		return 0
	}
	return v.delta.NumTriples()
}

// Tombstones returns the number of deleted base triples.
func (v *View) Tombstones() int { return len(v.tombs) }

// NumTriples returns the exact live triple count:
// |base| − |tombs| + |delta|.
func (v *View) NumTriples() int {
	return v.base.NumTriples() - len(v.tombs) + v.DeltaAdds()
}

// Tombstoned reports whether t is a deleted base triple.
func (v *View) Tombstoned(t rdf.Triple) bool {
	if v.tombs == nil {
		return false
	}
	_, dead := v.tombs[t]
	return dead
}

// Contains reports membership in the LIVE set: present in the base and not
// tombstoned, or present in the delta.
func (v *View) Contains(t rdf.Triple) bool {
	if v.base.Contains(t) {
		return !v.Tombstoned(t)
	}
	return v.delta != nil && v.delta.Contains(t)
}

// Numeric resolves the numeric value of a term across both layers. Terms
// interned after the base was built are covered by the delta store's
// numeric table (rebuilt per batch against the grown dictionary).
func (v *View) Numeric(id rdf.ID) (float64, bool) {
	if x, ok := v.base.Numeric(id); ok {
		return x, true
	}
	if v.delta != nil {
		return v.delta.Numeric(id)
	}
	return 0, false
}

// IndexBytes estimates the resident index size across both layers.
func (v *View) IndexBytes() int64 {
	n := v.base.EstimateBytes()
	if v.delta != nil {
		n += v.delta.EstimateBytes()
	}
	return n
}

// Triples streams the live triple set: the base in SPO order with
// tombstones skipped, then the delta adds. This is the compaction feed
// (snap.BuildExternal sorts and deduplicates downstream, so emission order
// does not matter) and the materialization path of the dynamic shim.
func (v *View) Triples(emit func(rdf.Triple) error) error {
	full := v.base.FullSpan(index.SPO)
	for i := 0; i < full.Len(); i++ {
		t := v.base.At(index.SPO, full, i)
		if v.Tombstoned(t) {
			continue
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if v.delta != nil {
		dsp := v.delta.FullSpan(index.SPO)
		for i := 0; i < dsp.Len(); i++ {
			if err := emit(v.delta.At(index.SPO, dsp, i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// stores returns the non-nil layer stores, base first — the scope the
// span-statistics estimator sums over.
func (v *View) stores() []*index.Store {
	if v.delta == nil {
		return []*index.Store{v.base}
	}
	return []*index.Store{v.base, v.delta}
}
