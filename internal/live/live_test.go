package live

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// splitGraph builds a base store from the first part of g's triples and
// returns the remainder as the pending stream.
func splitGraph(g *rdf.Graph, baseFrac float64) (*index.Store, []rdf.Triple) {
	n := int(float64(len(g.Triples)) * baseFrac)
	base := &rdf.Graph{Dict: g.Dict, Triples: append([]rdf.Triple(nil), g.Triples[:n]...)}
	return index.Build(base), g.Triples[n:]
}

func mustStore(t *testing.T, base *index.Store, opts Options) *Store {
	t.Helper()
	s, err := NewStore(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// liveSet returns the store's live triple set via the streaming iterator.
func liveSet(t *testing.T, v *View) map[rdf.Triple]bool {
	t.Helper()
	set := make(map[rdf.Triple]bool)
	if err := v.Triples(func(tr rdf.Triple) error {
		if set[tr] {
			t.Fatalf("Triples emitted %v twice", tr)
		}
		set[tr] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return set
}

func TestOverlaySetSemantics(t *testing.T) {
	g := testkit.RandomGraph(3, 20, 3, 15, 200)
	baseStore, rest := splitGraph(g, 0.5)
	s := mustStore(t, baseStore, Options{})

	model := make(map[rdf.Triple]bool)
	for _, tr := range baseStore.Triples(index.SPO) {
		model[tr] = true
	}

	rng := rand.New(rand.NewSource(42))
	pool := append(append([]rdf.Triple(nil), g.Triples...), rdf.Triple{S: 1, P: 21, O: 2})
	for i := 0; i < 500; i++ {
		tr := pool[rng.Intn(len(pool))]
		if i < len(rest) {
			tr = rest[i] // make sure every held-out triple flows through
		}
		if rng.Intn(3) == 0 {
			if err := s.Delete(tr); err != nil {
				t.Fatal(err)
			}
			delete(model, tr)
		} else {
			if err := s.Add(tr); err != nil {
				t.Fatal(err)
			}
			model[tr] = true
		}
	}

	v := s.View()
	if v.NumTriples() != len(model) {
		t.Fatalf("NumTriples = %d, model has %d", v.NumTriples(), len(model))
	}
	got := liveSet(t, v)
	for tr := range model {
		if !got[tr] || !v.Contains(tr) {
			t.Fatalf("live set missing %v", tr)
		}
	}
	for tr := range got {
		if !model[tr] {
			t.Fatalf("live set has spurious %v", tr)
		}
	}
	// Invariants: delta ∩ base = ∅, tombs ⊆ base.
	if v.delta != nil {
		for _, tr := range v.delta.Triples(index.SPO) {
			if v.base.Contains(tr) {
				t.Fatalf("delta triple %v also in base", tr)
			}
		}
	}
	for tr := range v.tombs {
		if !v.base.Contains(tr) {
			t.Fatalf("tombstone %v not in base", tr)
		}
	}
}

func TestDeleteCancelsPendingAddAndResurrects(t *testing.T) {
	g := testkit.RandomGraph(4, 10, 2, 8, 60)
	baseStore, _ := splitGraph(g, 1.0)
	s := mustStore(t, baseStore, Options{})

	fresh := rdf.Triple{S: 0, P: 10, O: 1}
	if s.Contains(fresh) {
		t.Fatal("fixture: fresh triple already in base")
	}
	// Add then delete a NEW triple: cancels the pending add, no tombstone.
	if err := s.Add(fresh); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(fresh) {
		t.Fatal("pending add not visible")
	}
	if err := s.Delete(fresh); err != nil {
		t.Fatal(err)
	}
	v := s.View()
	if v.Contains(fresh) || v.DeltaAdds() != 0 || v.Tombstones() != 0 {
		t.Fatalf("cancel left overlay state: delta=%d tombs=%d", v.DeltaAdds(), v.Tombstones())
	}

	// Delete then re-add a BASE triple: tombstone, then resurrection.
	tr := baseStore.Triples(index.SPO)[0]
	if err := s.Delete(tr); err != nil {
		t.Fatal(err)
	}
	if s.Contains(tr) {
		t.Fatal("tombstoned triple still live")
	}
	if got := s.View().Tombstones(); got != 1 {
		t.Fatalf("tombstones = %d, want 1", got)
	}
	if err := s.Add(tr); err != nil {
		t.Fatal(err)
	}
	v = s.View()
	if !v.Contains(tr) || v.Tombstones() != 0 || v.DeltaAdds() != 0 {
		t.Fatalf("resurrection failed: contains=%v delta=%d tombs=%d",
			v.Contains(tr), v.DeltaAdds(), v.Tombstones())
	}
	if v.NumTriples() != baseStore.NumTriples() {
		t.Fatalf("NumTriples = %d, want %d", v.NumTriples(), baseStore.NumTriples())
	}
}

func TestViewImmutableAcrossApply(t *testing.T) {
	g := testkit.RandomGraph(5, 12, 2, 10, 80)
	baseStore, _ := splitGraph(g, 1.0)
	s := mustStore(t, baseStore, Options{})
	tr := baseStore.Triples(index.SPO)[3]

	before := s.View()
	wantN := before.NumTriples()
	if err := s.Delete(tr); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(rdf.Triple{S: 0, P: 12, O: 1}); err != nil {
		t.Fatal(err)
	}
	if before.NumTriples() != wantN || !before.Contains(tr) {
		t.Fatal("published view changed after later Apply")
	}
	after := s.View()
	if after.Gen() <= before.Gen() {
		t.Fatalf("generation did not advance: %d -> %d", before.Gen(), after.Gen())
	}
	if after.Contains(tr) {
		t.Fatal("new view still contains deleted triple")
	}
}

// TestCompactReconcilesCancelDuringBuild pins the touched-set edge case: a
// pending add captured into the new base and cancelled mid-build must come
// out tombstoned, not resurrected.
func TestCompactReconcilesCancelDuringBuild(t *testing.T) {
	g := testkit.RandomGraph(6, 10, 2, 8, 60)
	baseStore, _ := splitGraph(g, 1.0)
	s := mustStore(t, baseStore, Options{})
	fresh := rdf.Triple{S: 1, P: 10, O: 2}
	if err := s.Add(fresh); err != nil {
		t.Fatal(err)
	}

	v, err := s.beginCompact()
	if err != nil {
		t.Fatal(err)
	}
	// Build the new base from the captured view — it contains fresh.
	ng := &rdf.Graph{Dict: s.dict}
	_ = v.Triples(func(tr rdf.Triple) error { ng.Triples = append(ng.Triples, tr); return nil })
	newBase := index.Build(ng)
	// Mid-build: cancel the pending add.
	if err := s.Delete(fresh); err != nil {
		t.Fatal(err)
	}
	res := s.finishCompact(newBase, nil)
	if res.ResidualTombs != 1 {
		t.Fatalf("residual tombs = %d, want 1 (cancelled add present in new base)", res.ResidualTombs)
	}
	if s.Contains(fresh) {
		t.Fatal("cancelled-during-build add still live after adoption")
	}
}

// TestCompactReconcilesResurrectDuringBuild pins the symmetric case: a
// tombstoned base triple captured OUT of the new base and resurrected
// mid-build must come back as a delta add.
func TestCompactReconcilesResurrectDuringBuild(t *testing.T) {
	g := testkit.RandomGraph(7, 10, 2, 8, 60)
	baseStore, _ := splitGraph(g, 1.0)
	s := mustStore(t, baseStore, Options{})
	tr := baseStore.Triples(index.SPO)[5]
	if err := s.Delete(tr); err != nil {
		t.Fatal(err)
	}

	v, err := s.beginCompact()
	if err != nil {
		t.Fatal(err)
	}
	ng := &rdf.Graph{Dict: s.dict}
	_ = v.Triples(func(x rdf.Triple) error { ng.Triples = append(ng.Triples, x); return nil })
	newBase := index.Build(ng) // does NOT contain tr
	if err := s.Add(tr); err != nil {
		t.Fatal(err)
	}
	res := s.finishCompact(newBase, nil)
	if res.ResidualAdds != 1 {
		t.Fatalf("residual adds = %d, want 1 (resurrected triple absent from new base)", res.ResidualAdds)
	}
	if !s.Contains(tr) {
		t.Fatal("resurrected-during-build triple lost after adoption")
	}
	if s.NumTriples() != baseStore.NumTriples() {
		t.Fatalf("NumTriples = %d, want %d", s.NumTriples(), baseStore.NumTriples())
	}
}

func TestCompactSingleFlight(t *testing.T) {
	g := testkit.RandomGraph(8, 10, 2, 8, 50)
	baseStore, _ := splitGraph(g, 1.0)
	s := mustStore(t, baseStore, Options{})
	if _, err := s.beginCompact(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.CompactInMemory(); !errors.Is(err, ErrCompacting) {
		t.Fatalf("concurrent compaction: err = %v, want ErrCompacting", err)
	}
	s.abortCompact(nil)
	if _, _, err := s.CompactInMemory(); err != nil {
		t.Fatalf("compaction after abort: %v", err)
	}
}

func TestExactMatchesBruteForceOverOverlay(t *testing.T) {
	g := testkit.RandomGraph(11, 30, 3, 25, 350)
	baseStore, rest := splitGraph(g, 0.6)
	s := mustStore(t, baseStore, Options{})
	for _, tr := range rest {
		if err := s.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a slice of base triples so tombstone filtering is exercised.
	baseTriples := baseStore.Triples(index.SPO)
	deleted := make(map[rdf.Triple]bool)
	for i := 0; i < len(baseTriples); i += 7 {
		if err := s.Delete(baseTriples[i]); err != nil {
			t.Fatal(err)
		}
		deleted[baseTriples[i]] = true
	}
	final := &rdf.Graph{Dict: g.Dict}
	for _, tr := range g.Triples {
		if !deleted[tr] {
			final.Triples = append(final.Triples, tr)
		}
	}

	v := s.View()
	for _, distinct := range []bool{false, true} {
		q := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, distinct)
		want := testkit.BruteForce(final, q)
		pl, err := query.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Exact(context.Background(), v, pl)
		if err != nil {
			t.Fatal(err)
		}
		if !testkit.MapsEqual(got, want, 1e-9) {
			t.Fatalf("distinct=%v: exact %v, want %v", distinct, got, want)
		}
	}
	for _, agg := range []query.AggFunc{query.AggSum, query.AggAvg} {
		q := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false)
		q.Agg = agg
		want := testkit.BruteForce(final, q)
		pl, err := query.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Exact(context.Background(), v, pl)
		if err != nil {
			t.Fatal(err)
		}
		if !testkit.MapsEqual(got, want, 1e-6) {
			t.Fatalf("agg=%v: exact %v, want %v", agg, got, want)
		}
	}
}

// TestDistinctTakesExactPath pins the overlay DISTINCT policy (no silent
// bias): the walker refuses distinct plans and the exact path answers them
// correctly over the merged view.
func TestDistinctTakesExactPath(t *testing.T) {
	g := testkit.RandomGraph(13, 25, 3, 20, 300)
	baseStore, rest := splitGraph(g, 0.7)
	s := mustStore(t, baseStore, Options{})
	for _, tr := range rest {
		if err := s.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(baseStore.Triples(index.SPO)[0]); err != nil {
		t.Fatal(err)
	}

	q := testkit.ChainQuery(g, []rdf.ID{25, 26}, true, true)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWalker(s.View(), pl, WalkerOptions{Seed: 1}); !errors.Is(err, ErrDistinctOverlay) {
		t.Fatalf("distinct walker: err = %v, want ErrDistinctOverlay", err)
	}

	final := &rdf.Graph{Dict: g.Dict}
	dead := baseStore.Triples(index.SPO)[0]
	for _, tr := range g.Triples {
		if tr != dead {
			final.Triples = append(final.Triples, tr)
		}
	}
	want := testkit.BruteForce(final, q)
	got, err := Exact(context.Background(), s.View(), pl)
	if err != nil {
		t.Fatal(err)
	}
	if !testkit.MapsEqual(got, want, 1e-9) {
		t.Fatalf("distinct exact %v, want %v", got, want)
	}
}
