package live

import (
	"os"
	"path/filepath"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// reopen simulates a restart: a fresh store over the same base fed by the
// same WAL path.
func reopen(t *testing.T, base *index.Store, walPath string) *Store {
	t.Helper()
	s, err := NewStore(base, Options{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWALReplayRestoresOverlay(t *testing.T) {
	g := testkit.RandomGraph(21, 15, 2, 12, 120)
	baseStore, rest := splitGraph(g, 0.6)
	walPath := filepath.Join(t.TempDir(), "ingest.wal")

	s := mustStore(t, baseStore, Options{WALPath: walPath})
	for i, tr := range rest {
		if err := s.Add(tr); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := s.Delete(baseStore.Triples(index.SPO)[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	// New terms must round-trip through the log by VALUE, not ID.
	novel := rdf.Triple{
		S: s.Dict().InternIRI("wal-novel-subject"),
		P: rdf.ID(15), // p0
		O: s.Dict().Intern(rdf.NewTypedLiteral("42", rdf.XSDInteger)),
	}
	if err := s.Add(novel); err != nil {
		t.Fatal(err)
	}
	want := liveSet(t, s.View())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart against a dictionary that has NOT seen the ingested terms:
	// rebuild the base from its own graph copy with a fresh dict prefix.
	s2 := reopen(t, baseStore, walPath)
	got := liveSet(t, s2.View())
	if len(got) != len(want) {
		t.Fatalf("replayed %d live triples, want %d", len(got), len(want))
	}
	for tr := range want {
		if !got[tr] {
			t.Fatalf("replay lost %v", tr)
		}
	}
	if !s2.Contains(novel) {
		t.Fatal("replay lost the novel-term triple")
	}
	s2.Close()
}

func TestWALTornTailTruncated(t *testing.T) {
	g := testkit.RandomGraph(22, 12, 2, 10, 80)
	baseStore, rest := splitGraph(g, 0.5)
	walPath := filepath.Join(t.TempDir(), "ingest.wal")

	s := mustStore(t, baseStore, Options{WALPath: walPath})
	for _, tr := range rest[:10] {
		if err := s.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	want := s.NumTriples()
	s.Close()

	// Crash mid-append: a partial record at the tail.
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore, _ := os.Stat(walPath)

	s2 := reopen(t, baseStore, walPath)
	if got := s2.NumTriples(); got != want {
		t.Fatalf("after torn tail: %d triples, want %d", got, want)
	}
	sizeAfter, _ := os.Stat(walPath)
	if sizeAfter.Size() >= sizeBefore.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", sizeBefore.Size(), sizeAfter.Size())
	}
	// The truncated log must accept appends again.
	if err := s2.Add(rest[10]); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := reopen(t, baseStore, walPath)
	if got := s3.NumTriples(); got != want+1 {
		t.Fatalf("append after truncation: %d triples, want %d", got, want+1)
	}
	s3.Close()
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	g := testkit.RandomGraph(23, 12, 2, 10, 80)
	baseStore, rest := splitGraph(g, 0.5)
	walPath := filepath.Join(t.TempDir(), "ingest.wal")

	s := mustStore(t, baseStore, Options{WALPath: walPath})
	if err := s.Add(rest[0]); err != nil {
		t.Fatal(err)
	}
	afterFirst, _ := os.Stat(walPath)
	if err := s.Add(rest[1]); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a byte inside the SECOND record's payload.
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[afterFirst.Size()+10] ^= 0x40
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := reopen(t, baseStore, walPath)
	if !s2.Contains(rest[0]) {
		t.Fatal("replay lost the intact first record")
	}
	if s2.Contains(rest[1]) {
		t.Fatal("replay applied a corrupt record")
	}
	s2.Close()
}

func TestWALRewriteAfterCompaction(t *testing.T) {
	g := testkit.RandomGraph(24, 15, 2, 12, 120)
	baseStore, rest := splitGraph(g, 0.6)
	walPath := filepath.Join(t.TempDir(), "ingest.wal")

	s := mustStore(t, baseStore, Options{WALPath: walPath})
	for _, tr := range rest {
		if err := s.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(baseStore.Triples(index.SPO)[2]); err != nil {
		t.Fatal(err)
	}
	recsBefore, _ := s.wal.stats()
	if recsBefore == 0 {
		t.Fatal("fixture: no WAL records before compaction")
	}

	newBase, res, err := s.CompactInMemory()
	if err != nil {
		t.Fatal(err)
	}
	if res.ResidualAdds != 0 || res.ResidualTombs != 0 {
		t.Fatalf("quiescent compaction left residual overlay: %+v", res)
	}
	recsAfter, _ := s.wal.stats()
	if recsAfter != 0 {
		t.Fatalf("rewritten WAL has %d records, want 0 (empty residual)", recsAfter)
	}
	want := liveSet(t, s.View())

	// Residual ops after the rewrite replay against the NEW base.
	post := rdf.Triple{S: 0, P: 15, O: 1}
	if err := s.Add(post); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := reopen(t, newBase, walPath)
	got := liveSet(t, s2.View())
	if len(got) != len(want)+1 || !s2.Contains(post) {
		t.Fatalf("restart from compacted base: %d triples, want %d", len(got), len(want)+1)
	}
	s2.Close()
}
