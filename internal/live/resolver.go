package live

import (
	"math/rand"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// layer identifies which store of the overlay a span came from.
const (
	layerBase  = 0
	layerDelta = 1
)

// spanPair is a step's candidate set under the current bindings: the base
// span and the delta span side by side. The candidate set is their DISJOINT
// union (delta ∩ base = ∅ by the Apply invariant) — and it deliberately
// INCLUDES tombstoned base triples: the sampling denominator d counts the
// superset, and a walk that draws a tombstoned triple rejects, so each LIVE
// triple is drawn with probability exactly 1/d and the Horvitz–Thompson
// weights stay unbiased for the live set. Filtering tombstones out of d
// instead would require knowing how many tombstones fall inside every span,
// which no index answers in O(1).
type spanPair struct {
	base  index.Span
	delta index.Span
	total int
}

// resolver resolves one plan's steps against a View. It is not safe for
// concurrent use; create one per walker/enumeration.
type resolver struct {
	v  *View
	pl *query.Plan
}

func newResolver(v *View, pl *query.Plan) *resolver {
	return &resolver{v: v, pl: pl}
}

func atomVal(a query.Atom, b query.Bindings) rdf.ID {
	if a.IsVar() {
		return b[a.Var]
	}
	return a.ID
}

// boundTriple materializes a membership step's fully bound triple.
func (r *resolver) boundTriple(st *query.Step, b query.Bindings) rdf.Triple {
	return rdf.Triple{
		S: atomVal(st.Pattern.S, b),
		P: atomVal(st.Pattern.P, b),
		O: atomVal(st.Pattern.O, b),
	}
}

// resolve gathers step i's candidate spans under b. Membership steps gather
// no spans and report d = 1 iff the triple is LIVE (tombstones honored
// immediately — a membership step binds nothing, so there is no later
// rejection opportunity). ok is false when the candidate set is empty.
func (r *resolver) resolve(i int, b query.Bindings) (spanPair, bool) {
	st := &r.pl.Steps[i]
	if st.Kind == query.AccessMembership {
		if r.v.Contains(r.boundTriple(st, b)) {
			return spanPair{total: 1}, true
		}
		return spanPair{}, false
	}
	var sp spanPair
	if bs, ok := st.ResolveSpan(r.v.base, b); ok {
		sp.base = bs
		sp.total += bs.Len()
	}
	if r.v.delta != nil {
		if ds, ok := st.ResolveSpan(r.v.delta, b); ok {
			sp.delta = ds
			sp.total += ds.Len()
		}
	}
	return sp, sp.total > 0
}

// sample draws uniformly from the gathered candidate set. live is false
// when the draw hit a tombstoned base triple — the caller rejects the walk
// (HT mass assigned to dead candidates, identical in effect to a dead-end
// rejection).
func (r *resolver) sample(i int, sp spanPair, rng *rand.Rand) (rdf.Triple, bool) {
	st := &r.pl.Steps[i]
	n := rng.Intn(sp.total)
	if l := sp.base.Len(); n < l {
		t := r.v.base.At(st.Order, sp.base, n)
		return t, !r.v.Tombstoned(t)
	} else {
		t := r.v.delta.At(st.Order, sp.delta, n-l)
		return t, true
	}
}

// enumerate visits every extension of the current bindings through steps
// j..last over the LIVE set (tombstones filtered), calling visit at each
// full binding. Backtracking is in-place on b; visit's error aborts the
// recursion (context cancellation).
func (r *resolver) enumerate(j int, b query.Bindings, visit func() error) error {
	if j == len(r.pl.Steps) {
		return visit()
	}
	st := &r.pl.Steps[j]
	sp, ok := r.resolve(j, b)
	if !ok {
		return nil
	}
	if st.Kind == query.AccessMembership {
		// Membership steps bind no new variables, so no filter anchors here.
		return r.enumerate(j+1, b, visit)
	}
	ord := st.Order
	for n := 0; n < sp.base.Len(); n++ {
		t := r.v.base.At(ord, sp.base, n)
		if r.v.Tombstoned(t) {
			continue
		}
		st.Bind(t, b)
		if len(st.Filters) > 0 && !r.pl.StepFiltersOK(j, r.v, b) {
			continue
		}
		if err := r.enumerate(j+1, b, visit); err != nil {
			st.Unbind(b)
			return err
		}
	}
	for n := 0; n < sp.delta.Len(); n++ {
		st.Bind(r.v.delta.At(ord, sp.delta, n), b)
		if len(st.Filters) > 0 && !r.pl.StepFiltersOK(j, r.v, b) {
			continue
		}
		if err := r.enumerate(j+1, b, visit); err != nil {
			st.Unbind(b)
			return err
		}
	}
	st.Unbind(b)
	return nil
}

// resolverWidth adapts the resolver to card.SpanResolver: the tipping
// oracle's adjacent-step widths are the exact merged candidate-set sizes
// (tombstones included — consistent with the sampling denominator).
type resolverWidth struct{ r *resolver }

func (rw resolverWidth) ResolveWidth(step int, b query.Bindings) (float64, bool) {
	sp, ok := rw.r.resolve(step, b)
	if !ok {
		return 0, false
	}
	return float64(sp.total), true
}
