// Package live implements the updatable overlay store behind live
// ingestion: an in-memory delta (inserts indexed as a small index.Store,
// deletions as a tombstone set) layered over an immutable — typically
// mmap'd — base index.Store.
//
// Readers resolve through immutable Views; each applied batch publishes a
// fresh generation, so serving never blocks on ingest. Walk sampling draws
// uniformly from the DISJOINT union of the base span (tombstones included)
// and the delta span with d = |base span| + |delta span|; a walk that draws
// a tombstoned triple rejects, exactly like a dead-end walk, which keeps
// the Horvitz–Thompson estimator unbiased for the live triple set (see
// DESIGN.md for the weight-correction argument). Exact engines enumerate
// the merged view with tombstones filtered.
//
// In front of Apply sits an optional write-ahead log: batches are
// checksummed and appended before they are acknowledged, and replayed on
// open (stopping at a torn tail), so acknowledged updates survive a crash
// between compactions. Behind it, Compact streams base+delta through
// snap.BuildExternal into a fresh .kgs snapshot and adopts it as the new
// base without blocking ingest — see compact.go.
package live

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
)

// Op is one mutation: an insert (Del false) or a delete (Del true) of an
// encoded triple. IDs must come from the store's dictionary.
type Op struct {
	Del bool
	T   rdf.Triple
}

// Options configure NewStore.
type Options struct {
	// Closer, when non-nil, owns the base store's backing resources (an
	// mmap'd snapshot). The store does NOT close it on compaction — the old
	// base may still be referenced by in-flight Views; Compact returns it
	// as CompactResult.Retired for the caller (the server's refcounted
	// epochs, or a bench that drains readers) to close.
	Closer io.Closer
	// WALPath, when non-empty, opens (creating if needed) a write-ahead
	// log: existing records are replayed into the overlay before NewStore
	// returns, and every subsequent Apply appends its batch before
	// acknowledging.
	WALPath string
	// NoSync skips the per-append fsync on the WAL (benchmarks; durability
	// then extends only to the OS page cache).
	NoSync bool
}

// Store is the updatable overlay store. All methods are safe for concurrent
// use; reads are wait-free (an atomic View load).
type Store struct {
	mu   sync.Mutex
	dict *rdf.Dict

	base       *index.Store
	baseCloser io.Closer

	// adds + addSet mirror each other: addSet maps a pending add to its
	// index in adds, making Delete of a pending insert O(1).
	adds   []rdf.Triple
	addSet map[rdf.Triple]int
	// tombs is the canonical tombstone set; views get copy-on-write clones.
	tombs map[rdf.Triple]struct{}

	cur atomic.Pointer[View]
	gen uint64

	wal *wal

	// capturing is set while a compaction builds from a captured view;
	// touched records every triple mutated during that window so adoption
	// can reconcile overlay entries that were REMOVED mid-build (a
	// cancelled pending add, a resurrected tombstone) — see finishCompact.
	capturing bool
	touched   map[rdf.Triple]struct{}

	applied     int64
	compactions int64

	lastCompactMillis int64
	lastErr           error
}

// ErrCompacting reports a Compact call while another is in flight; the
// store runs at most one compaction at a time (ingest continues regardless).
var ErrCompacting = errors.New("live: compaction already in progress")

// NewStore layers an empty overlay over base. If opts.WALPath names an
// existing log, its records are replayed (re-interning terms) so the
// overlay reflects every acknowledged batch from the previous run.
func NewStore(base *index.Store, opts Options) (*Store, error) {
	s := &Store{
		dict:       base.Dict(),
		base:       base,
		baseCloser: opts.Closer,
		addSet:     make(map[rdf.Triple]int),
		tombs:      make(map[rdf.Triple]struct{}),
	}
	s.cur.Store(&View{base: base})
	if opts.WALPath != "" {
		w, batches, err := openWAL(opts.WALPath, opts.NoSync)
		if err != nil {
			return nil, err
		}
		for _, b := range batches {
			ops := make([]Op, len(b))
			for i, r := range b {
				ops[i] = Op{Del: r.Del, T: rdf.Triple{
					S: s.dict.Intern(r.S),
					P: s.dict.Intern(r.P),
					O: s.dict.Intern(r.O),
				}}
			}
			s.applyOps(ops, false)
		}
		s.wal = w
	}
	return s, nil
}

// View returns the current immutable view; wait-free.
func (s *Store) View() *View { return s.cur.Load() }

// Dict returns the shared dictionary (safe for concurrent interning).
func (s *Store) Dict() *rdf.Dict { return s.dict }

// NumTriples returns the current live triple count.
func (s *Store) NumTriples() int { return s.View().NumTriples() }

// Contains reports live membership under the current view.
func (s *Store) Contains(t rdf.Triple) bool { return s.View().Contains(t) }

// Add applies a single insertion (a one-op batch).
func (s *Store) Add(t rdf.Triple) error { return s.Apply([]Op{{T: t}}) }

// Delete applies a single deletion (a one-op batch).
func (s *Store) Delete(t rdf.Triple) error { return s.Apply([]Op{{Del: true, T: t}}) }

// ApplyDecoded interns the batch's terms and applies it. This is the ingest
// endpoint's entry point: terms arrive decoded because they may be new.
func (s *Store) ApplyDecoded(ops []DecodedOp) error {
	enc := make([]Op, len(ops))
	for i, op := range ops {
		enc[i] = Op{Del: op.Del, T: rdf.Triple{
			S: s.dict.Intern(op.S),
			P: s.dict.Intern(op.P),
			O: s.dict.Intern(op.O),
		}}
	}
	return s.Apply(enc)
}

// DecodedOp is a mutation over decoded terms — the WAL record and wire
// format (new terms have no ID before they are interned).
type DecodedOp struct {
	Del     bool
	S, P, O rdf.Term
}

// Apply executes one batch of mutations in order, appends it to the WAL (if
// configured) BEFORE acknowledging, and publishes a fresh View. Ops within
// a batch apply sequentially, so add-then-delete of the same triple inside
// one batch nets to a no-op. Re-inserting a live triple and deleting an
// absent one are no-ops; re-inserting a tombstoned base triple resurrects
// it; deleting a pending add cancels it in O(1).
func (s *Store) Apply(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	return s.applyOps(ops, true)
}

func (s *Store) applyOps(ops []Op, logWAL bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if logWAL && s.wal != nil {
		recs := make([]DecodedOp, len(ops))
		for i, op := range ops {
			recs[i] = DecodedOp{
				Del: op.Del,
				S:   s.dict.Term(op.T.S),
				P:   s.dict.Term(op.T.P),
				O:   s.dict.Term(op.T.O),
			}
		}
		if err := s.wal.append(recs); err != nil {
			s.lastErr = err
			return err
		}
	}

	// Copy-on-write: published views alias s.tombs, so clone before the
	// first tombstone mutation of this batch.
	tombsCloned := false
	cloneTombs := func() {
		if tombsCloned {
			return
		}
		nt := make(map[rdf.Triple]struct{}, len(s.tombs)+1)
		for t := range s.tombs {
			nt[t] = struct{}{}
		}
		s.tombs = nt
		tombsCloned = true
	}

	deltaDirty := false
	for _, op := range ops {
		t := op.T
		if s.capturing {
			s.touched[t] = struct{}{}
		}
		if !op.Del {
			if _, dead := s.tombs[t]; dead {
				cloneTombs()
				delete(s.tombs, t)
			} else if s.base.Contains(t) {
				// Already live in the base: no-op.
			} else if _, pending := s.addSet[t]; !pending {
				s.addSet[t] = len(s.adds)
				s.adds = append(s.adds, t)
				deltaDirty = true
			}
			continue
		}
		if i, pending := s.addSet[t]; pending {
			// O(1) cancel: swap-remove from the adds slice.
			last := len(s.adds) - 1
			s.adds[i] = s.adds[last]
			s.addSet[s.adds[i]] = i
			s.adds = s.adds[:last]
			delete(s.addSet, t)
			deltaDirty = true
		} else if s.base.Contains(t) {
			if _, dead := s.tombs[t]; !dead {
				cloneTombs()
				s.tombs[t] = struct{}{}
			}
		}
	}
	if deltaDirty || tombsCloned {
		s.applied++
	}
	s.publishLocked(deltaDirty)
	return nil
}

// publishLocked builds the delta store if the adds changed and installs a
// new View generation. Callers hold s.mu.
func (s *Store) publishLocked(deltaDirty bool) {
	prev := s.cur.Load()
	delta := prev.delta
	if deltaDirty {
		if len(s.adds) == 0 {
			delta = nil
		} else {
			// The delta index is rebuilt per batch: O(|dict| + |delta|),
			// independent of the base — the LSM memtable cost, bounded by
			// compaction. The slice is copied because index.Build's order
			// goroutines read it while future Applies mutate s.adds.
			g := &rdf.Graph{Dict: s.dict, Triples: append([]rdf.Triple(nil), s.adds...)}
			g.Dedup()
			delta = index.Build(g)
		}
	}
	tombs := s.tombs
	if len(tombs) == 0 {
		tombs = nil
	}
	s.gen++
	s.cur.Store(&View{base: s.base, delta: delta, tombs: tombs, gen: s.gen})
}

// Stats is an overlay telemetry snapshot.
type Stats struct {
	Gen               uint64
	BaseTriples       int
	DeltaAdds         int
	Tombstones        int
	LiveTriples       int
	AppliedBatches    int64
	Compactions       int64
	LastCompactMillis int64
	WALRecords        int64
	WALBytes          int64
	// LastErr is the most recent WAL-append, compaction or WAL-rewrite
	// error ("" when the last such operation succeeded) — surfaced through
	// /healthz so operators see failures without polling.
	LastErr string
}

// Stats returns current overlay telemetry.
func (s *Store) Stats() Stats {
	v := s.View()
	s.mu.Lock()
	st := Stats{
		Gen:               v.gen,
		BaseTriples:       v.base.NumTriples(),
		DeltaAdds:         v.DeltaAdds(),
		Tombstones:        v.Tombstones(),
		LiveTriples:       v.NumTriples(),
		AppliedBatches:    s.applied,
		Compactions:       s.compactions,
		LastCompactMillis: s.lastCompactMillis,
	}
	if s.lastErr != nil {
		st.LastErr = s.lastErr.Error()
	}
	s.mu.Unlock()
	if s.wal != nil {
		st.WALRecords, st.WALBytes = s.wal.stats()
	}
	return st
}

// LastErr returns the most recent persistence/compaction error, or nil.
func (s *Store) LastErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Close closes the WAL and the CURRENT base's closer. Retired bases from
// earlier compactions are the caller's to close (CompactResult.Retired).
func (s *Store) Close() error {
	var first error
	if s.wal != nil {
		if err := s.wal.close(); err != nil {
			first = err
		}
	}
	s.mu.Lock()
	c := s.baseCloser
	s.baseCloser = nil
	s.mu.Unlock()
	if c != nil {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
