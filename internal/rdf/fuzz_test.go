package rdf

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: the three loaders must never panic on arbitrary input, and
// anything the N-Triples reader accepts must survive a write/read round
// trip. Run in seed-corpus mode under `go test`; fuzz with
// `go test -fuzz=FuzzReadNTriples ./internal/rdf`.

func FuzzReadNTriples(f *testing.F) {
	f.Add(sampleNT)
	f.Add("<a> <b> <c> .")
	f.Add(`<a> <b> "lit"@en .`)
	f.Add(`<a> <b> "42"^^<dt> .`)
	f.Add("_:x <p> _:y .")
	f.Add("# only a comment\n")
	f.Add("<a <b> <c> .")
	f.Add(`<a> <b> "unterminated`)
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadNTriples(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			t.Fatalf("accepted input failed to serialize: %v", err)
		}
		g2, err := ReadNTriples(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\noriginal: %q\nwritten: %q", err, in, buf.String())
		}
		if g2.Len() != g.Len() {
			t.Fatalf("round trip changed triple count %d -> %d", g.Len(), g2.Len())
		}
	})
}

func FuzzReadTurtle(f *testing.F) {
	f.Add(sampleTTL)
	f.Add("@prefix e: <u:> .\ne:a e:p e:b .")
	f.Add("@prefix e: <u:> .\ne:a a e:C ; e:p 1, 2.5, true .")
	f.Add("@base <http://b/> .\n<x> <y> <z> .")
	f.Add("e:a e:p e:b .")
	f.Add("@prefix")
	f.Add(`@prefix e: <u:> . e:a e:p """long` + "\n" + `string""" .`)
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadTurtle(strings.NewReader(in))
		if err != nil {
			return
		}
		// Anything accepted must serialize as N-Triples and re-load.
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			t.Fatalf("accepted Turtle failed to serialize: %v", err)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	g := NewGraph()
	g.AddIRIs("a", "b", "c")
	var buf bytes.Buffer
	WriteBinary(&buf, g)
	f.Add(buf.Bytes())
	f.Add([]byte("KGX1"))
	f.Add([]byte("KGX1\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte{})
	// Hostile headers: counts far larger than the input can hold must be
	// rejected up front (inputSize bound), not ground through.
	f.Add([]byte("KGX1\xff\xff\xff\xff"))
	f.Add([]byte("KGX1\x00\x00\x00\x00\xff\xff\xff\xff"))
	f.Add([]byte("KGX1\x01\x00\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		// Accepted snapshots must contain only in-range IDs.
		for _, tr := range g.Triples {
			if int(tr.S) >= g.Dict.Len() || int(tr.P) >= g.Dict.Len() || int(tr.O) >= g.Dict.Len() {
				t.Fatal("accepted snapshot with dangling IDs")
			}
		}
	})
}
