package rdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

const sampleNT = `# a comment
<http://ex.org/alice> <http://ex.org/knows> <http://ex.org/bob> .
<http://ex.org/alice> <http://ex.org/name> "Alice" .

<http://ex.org/bob> <http://ex.org/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex.org/bob> <http://ex.org/name> "Bobo"@en .
_:b0 <http://ex.org/p> _:b1 .
`

func TestReadNTriples(t *testing.T) {
	g, err := ReadNTriples(strings.NewReader(sampleNT))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Fatalf("parsed %d triples, want 5", g.Len())
	}
	found := false
	for _, tr := range g.Triples {
		d := g.Decode(tr)
		if d.O == NewTypedLiteral("42", XSDInteger) {
			found = true
			if d.S != NewIRI("http://ex.org/bob") {
				t.Errorf("typed literal triple has subject %v", d.S)
			}
		}
	}
	if !found {
		t.Error("typed literal triple not parsed")
	}
}

func TestReadNTriplesDedups(t *testing.T) {
	in := "<a> <p> <b> .\n<a> <p> <b> .\n"
	g, err := ReadNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Errorf("want 1 triple after dedup, got %d", g.Len())
	}
}

func TestReadNTriplesErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"missing dot", "<a> <p> <b>", "expected '.'"},
		{"unterminated IRI", "<a", "unterminated"},
		{"unterminated literal", `<a> <p> "oops .`, "unterminated literal"},
		{"bad escape", `<a> <p> "x\q" .`, "unknown escape"},
		{"dangling escape", `<a> <p> "x\`, "dangling escape"},
		{"unicode escape", "<a> <p> \"x\\u0041\" .", "not supported"},
		{"trailing junk", "<a> <p> <b> . extra", "trailing content"},
		{"empty blank label", "_: <p> <b> .", "empty blank node label"},
		{"bare word", "a <p> <b> .", "unexpected character"},
		{"truncated", "<a> <p>", "end of line"},
		{"empty lang", `<a> <p> "x"@ .`, "empty language tag"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadNTriples(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("no error for %q", c.in)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
			var pe *ParseError
			if !errorsAs(err, &pe) {
				t.Errorf("error is %T, want *ParseError", err)
			} else if pe.Line != 1 {
				t.Errorf("error line = %d, want 1", pe.Line)
			}
		})
	}
}

// errorsAs avoids importing errors for one call and keeps the test explicit.
func errorsAs(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := NewGraph()
	g.Add(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewLiteral("plain"))
	g.Add(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewLangLiteral("hej", "sv"))
	g.Add(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewTypedLiteral("1.5", XSDDouble))
	g.Add(NewBlank("x"), NewIRI("http://ex.org/p"), NewIRI("http://ex.org/o"))
	g.Add(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewLiteral("esc \" \\ \n\t\r done"))
	g.Dedup()

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatalf("re-parse failed: %v\noutput was:\n%s", err, buf.String())
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round trip changed triple count: %d -> %d", g.Len(), g2.Len())
	}
	set := map[string]bool{}
	for _, tr := range g.Triples {
		set[g.Decode(tr).String()] = true
	}
	for _, tr := range g2.Triples {
		if !set[g2.Decode(tr).String()] {
			t.Errorf("round trip invented triple %s", g2.Decode(tr))
		}
	}
}

func TestRoundTripPropertyLiterals(t *testing.T) {
	// Property: any literal lexical form free of \u-needing control chars
	// survives a write/read round trip.
	f := func(lex string) bool {
		// The writer emits escapes only for " \ \n \r \t; other control
		// characters would need \u escapes the reader rejects, so filter.
		for _, r := range lex {
			if r < 0x20 && r != '\n' && r != '\r' && r != '\t' {
				return true // skip: out of supported alphabet
			}
		}
		g := NewGraph()
		g.Add(NewIRI("s"), NewIRI("p"), NewLiteral(lex))
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			return false
		}
		g2, err := ReadNTriples(&buf)
		if err != nil || g2.Len() != 1 {
			return false
		}
		return g2.Decode(g2.Triples[0]).O == NewLiteral(lex)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReadNTriplesIntoAccumulates(t *testing.T) {
	g := NewGraph()
	if err := ReadNTriplesInto(strings.NewReader("<a> <p> <b> .\n"), g); err != nil {
		t.Fatal(err)
	}
	if err := ReadNTriplesInto(strings.NewReader("<a> <p> <c> .\n"), g); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Errorf("accumulated %d triples, want 2", g.Len())
	}
}
