// Package rdf implements the RDF data model used throughout kgexplore:
// terms (IRIs and literals), triples, dictionary encoding of terms to dense
// integer IDs, and N-Triples input/output.
//
// All query processing in this repository operates on dictionary-encoded
// triples (three uint32 IDs); strings appear only at the edges, when data is
// loaded and when results are rendered. This mirrors the design of the
// engines evaluated in the paper, whose indexes store integer-encoded triples.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind distinguishes the lexical categories of RDF terms.
type TermKind uint8

const (
	// IRI is an Internationalized Resource Identifier (we follow the paper
	// in calling these URIs interchangeably).
	IRI TermKind = iota
	// Literal is an RDF literal; the Value holds the lexical form and
	// Datatype optionally holds the datatype IRI ("" means xsd:string).
	Literal
	// BlankNode is an RDF blank node with a local label.
	BlankNode
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case BlankNode:
		return "BlankNode"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a decoded RDF term. Terms are values; they compare with ==.
type Term struct {
	Kind     TermKind
	Value    string // IRI string, literal lexical form, or blank node label
	Datatype string // literal datatype IRI; empty for plain literals
	Lang     string // literal language tag; empty if none
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewTypedLiteral returns a literal with a datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewBlank returns a blank node term with the given label.
func NewBlank(label string) Term { return Term{Kind: BlankNode, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case BlankNode:
		return "_:" + t.Value
	case Literal:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	default:
		return fmt.Sprintf("?!%v", t.Kind)
	}
}

// escapeLiteral escapes the characters N-Triples requires escaping inside
// literal lexical forms.
func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// NumericValue interprets a term as a number: literals whose lexical form
// parses as a float (regardless of datatype) yield their value. IRIs and
// blank nodes are not numeric. Used by the SUM and AVG aggregates.
func NumericValue(t Term) (float64, bool) {
	if t.Kind != Literal {
		return 0, false
	}
	v, err := strconv.ParseFloat(t.Value, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Well-known vocabulary IRIs used by the exploration model.
const (
	RDFType      = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSSubClass = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	RDFSLabel    = "http://www.w3.org/2000/01/rdf-schema#label"
	OWLThing     = "http://www.w3.org/2002/07/owl#Thing"
	XSDInteger   = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDouble    = "http://www.w3.org/2001/XMLSchema#double"
	XSDString    = "http://www.w3.org/2001/XMLSchema#string"
)
