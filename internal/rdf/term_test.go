package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://ex.org/a"), "<http://ex.org/a>"},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("hello"), `"hello"`},
		{NewLangLiteral("hola", "es"), `"hola"@es`},
		{NewTypedLiteral("42", XSDInteger), `"42"^^<` + XSDInteger + `>`},
		{NewLiteral(`quote " back \ nl` + "\n"), `"quote \" back \\ nl\n"`},
		{NewLiteral("tab\tret\r"), `"tab\tret\r"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("Term%+v.String() = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermKindString(t *testing.T) {
	if IRI.String() != "IRI" || Literal.String() != "Literal" || BlankNode.String() != "BlankNode" {
		t.Errorf("TermKind strings wrong: %s %s %s", IRI, Literal, BlankNode)
	}
	if got := TermKind(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestTermPredicates(t *testing.T) {
	if !NewIRI("x").IsIRI() || NewIRI("x").IsLiteral() {
		t.Error("IRI predicates wrong")
	}
	if !NewLiteral("x").IsLiteral() || NewLiteral("x").IsIRI() {
		t.Error("literal predicates wrong")
	}
}

func TestEscapeLiteralIdentityFastPath(t *testing.T) {
	s := "no special characters here"
	if got := escapeLiteral(s); got != s {
		t.Errorf("escapeLiteral(%q) = %q, want identity", s, got)
	}
}

func TestDictInternLookup(t *testing.T) {
	d := NewDict()
	a := d.InternIRI("http://ex.org/a")
	b := d.InternIRI("http://ex.org/b")
	if a == b {
		t.Fatal("distinct terms got the same ID")
	}
	if again := d.InternIRI("http://ex.org/a"); again != a {
		t.Errorf("re-interning changed ID: %d vs %d", again, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if id, ok := d.LookupIRI("http://ex.org/b"); !ok || id != b {
		t.Errorf("LookupIRI(b) = %d,%v", id, ok)
	}
	if _, ok := d.LookupIRI("http://ex.org/zzz"); ok {
		t.Error("LookupIRI of unknown term reported ok")
	}
	if got := d.Term(a); got != NewIRI("http://ex.org/a") {
		t.Errorf("Term(%d) = %v", a, got)
	}
}

func TestDictDistinguishesKinds(t *testing.T) {
	d := NewDict()
	iri := d.Intern(NewIRI("x"))
	lit := d.Intern(NewLiteral("x"))
	blank := d.Intern(NewBlank("x"))
	if iri == lit || lit == blank || iri == blank {
		t.Errorf("same-value terms of different kinds shared IDs: %d %d %d", iri, lit, blank)
	}
}

func TestDictTermPanicsOutOfRange(t *testing.T) {
	d := NewDict()
	defer func() {
		if recover() == nil {
			t.Error("Term on out-of-range ID did not panic")
		}
	}()
	d.Term(5)
}

func TestDictIDsDense(t *testing.T) {
	// Property: interning n distinct terms yields exactly IDs 0..n-1.
	f := func(labels []string) bool {
		d := NewDict()
		seen := map[string]bool{}
		n := 0
		for _, l := range labels {
			if !seen[l] {
				seen[l] = true
				n++
			}
			id := d.InternIRI(l)
			if int(id) >= n {
				return false
			}
		}
		return d.Len() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphAddDedup(t *testing.T) {
	g := NewGraph()
	g.AddIRIs("s", "p", "o")
	g.AddIRIs("s", "p", "o")
	g.AddIRIs("s", "p", "o2")
	if g.Len() != 3 {
		t.Fatalf("Len before dedup = %d", g.Len())
	}
	removed := g.Dedup()
	if removed != 1 || g.Len() != 2 {
		t.Errorf("Dedup removed %d, len %d; want 1, 2", removed, g.Len())
	}
	// Verify sorted order after dedup.
	for i := 1; i < len(g.Triples); i++ {
		a, b := g.Triples[i-1], g.Triples[i]
		if a.S > b.S || (a.S == b.S && a.P > b.P) || (a.S == b.S && a.P == b.P && a.O >= b.O) {
			t.Errorf("triples not strictly sorted at %d: %v %v", i, a, b)
		}
	}
}

func TestGraphDecode(t *testing.T) {
	g := NewGraph()
	g.Add(NewIRI("s"), NewIRI("p"), NewLiteral("v"))
	d := g.Decode(g.Triples[0])
	if d.S != NewIRI("s") || d.P != NewIRI("p") || d.O != NewLiteral("v") {
		t.Errorf("Decode = %v", d)
	}
	if want := `<s> <p> "v"`; d.String() != want {
		t.Errorf("String = %q want %q", d.String(), want)
	}
}

func TestGraphDedupProperty(t *testing.T) {
	// Property: Dedup is idempotent and preserves the set of triples.
	f := func(raw []uint8) bool {
		g := NewGraph()
		ids := make([]ID, 4)
		for i := range ids {
			ids[i] = g.Dict.InternIRI(string(rune('a' + i)))
		}
		set := map[Triple]bool{}
		for i := 0; i+2 < len(raw); i += 3 {
			tr := Triple{ids[raw[i]%4], ids[raw[i+1]%4], ids[raw[i+2]%4]}
			g.AddEncoded(tr)
			set[tr] = true
		}
		g.Dedup()
		if g.Len() != len(set) {
			return false
		}
		for _, tr := range g.Triples {
			if !set[tr] {
				return false
			}
		}
		second := g.Dedup()
		return second == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
