package rdf

import "sort"

// Field selectors for SortTriples: the triple position used as a sort key.
const (
	FieldS uint8 = iota
	FieldP
	FieldO
)

// smallSortCutoff is the slice length below which the comparator sort wins:
// counting passes have fixed per-key overhead that only pays off in bulk.
const smallSortCutoff = 64

// SortTriples sorts ts lexicographically by the three selected fields
// (p0 primary, p1 secondary, p2 tertiary).
//
// Dictionary IDs are dense, so the sort runs as an LSD radix sort: three
// stable counting passes keyed directly on the ID value — O(n + maxID) per
// pass with sequential counting-bucket access, instead of the O(n log n)
// interface-comparator calls of sort.Slice. When the ID space is sparse
// relative to n (huge counts array for few triples) or n is tiny, it falls
// back to a comparator sort.
func SortTriples(ts []Triple, p0, p1, p2 uint8) {
	n := len(ts)
	if n < 2 {
		return
	}
	var max ID
	for _, t := range ts {
		if v := fieldOf(t, p0); v > max {
			max = v
		}
		if v := fieldOf(t, p1); v > max {
			max = v
		}
		if v := fieldOf(t, p2); v > max {
			max = v
		}
	}
	if n < smallSortCutoff || uint64(max) > uint64(64*n)+1024 {
		comparatorSort(ts, p0, p1, p2)
		return
	}
	tmp := make([]Triple, n)
	counts := make([]uint32, int(max)+1)
	countingPass(ts, tmp, p2, counts)
	countingPass(tmp, ts, p1, counts)
	countingPass(ts, tmp, p0, counts)
	copy(ts, tmp)
}

// countingPass stably sorts src into dst by the selected field.
func countingPass(src, dst []Triple, pos uint8, counts []uint32) {
	for i := range counts {
		counts[i] = 0
	}
	for _, t := range src {
		counts[fieldOf(t, pos)]++
	}
	var sum uint32
	for i, c := range counts {
		counts[i] = sum
		sum += c
	}
	for _, t := range src {
		k := fieldOf(t, pos)
		dst[counts[k]] = t
		counts[k]++
	}
}

func comparatorSort(ts []Triple, p0, p1, p2 uint8) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if v, w := fieldOf(a, p0), fieldOf(b, p0); v != w {
			return v < w
		}
		if v, w := fieldOf(a, p1), fieldOf(b, p1); v != w {
			return v < w
		}
		return fieldOf(a, p2) < fieldOf(b, p2)
	})
}

func fieldOf(t Triple, pos uint8) ID {
	switch pos {
	case FieldS:
		return t.S
	case FieldP:
		return t.P
	default:
		return t.O
	}
}
