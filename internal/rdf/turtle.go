package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"
)

// ReadTurtle parses a practical subset of the Turtle syntax into a graph:
//
//   - @prefix / PREFIX declarations and prefixed names (ex:Thing)
//   - @base / BASE declarations (textual concatenation for relative IRIs)
//   - the `a` keyword for rdf:type
//   - predicate lists (`;`) and object lists (`,`)
//   - IRIs, blank nodes (_:x), and literals with @lang / ^^datatype,
//     including numeric and boolean shorthand (42, 1.5e3, true)
//   - '#' comments and triple-quoted long strings ("""...""")
//
// Unsupported Turtle features are reported as errors rather than silently
// skipped: collections ( ), anonymous blank nodes [ ], and \u escapes.
// The triples are deduplicated before returning.
func ReadTurtle(r io.Reader) (*Graph, error) {
	g := NewGraph()
	p := &turtleParser{g: g, prefixes: map[string]string{}}
	if err := p.parse(r); err != nil {
		return nil, err
	}
	g.Dedup()
	return g, nil
}

type turtleParser struct {
	g        *Graph
	prefixes map[string]string
	base     string
	src      string
	pos      int
	line     int
}

func (p *turtleParser) parse(r io.Reader) error {
	// Turtle statements can span lines, so read everything up front.
	br := bufio.NewReader(r)
	var sb strings.Builder
	if _, err := io.Copy(&sb, br); err != nil {
		return err
	}
	p.src = sb.String()
	p.line = 1
	for {
		p.skipWS()
		if p.pos >= len(p.src) {
			return nil
		}
		if err := p.statement(); err != nil {
			return err
		}
	}
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *turtleParser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *turtleParser) hasKeyword(kw string) bool {
	if len(p.src)-p.pos < len(kw) {
		return false
	}
	return strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw)
}

// statement parses one directive or triple statement.
func (p *turtleParser) statement() error {
	switch {
	case p.hasKeyword("@prefix"):
		p.pos += len("@prefix")
		return p.prefixDecl(true)
	case p.hasKeyword("PREFIX"):
		p.pos += len("PREFIX")
		return p.prefixDecl(false)
	case p.hasKeyword("@base"):
		p.pos += len("@base")
		return p.baseDecl(true)
	case p.hasKeyword("BASE"):
		p.pos += len("BASE")
		return p.baseDecl(false)
	default:
		return p.triples()
	}
}

func (p *turtleParser) prefixDecl(dotted bool) error {
	p.skipWS()
	name, err := p.prefixName()
	if err != nil {
		return err
	}
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = iri
	if dotted {
		p.skipWS()
		if p.peek() != '.' {
			return p.errf("@prefix requires a terminating '.'")
		}
		p.pos++
	}
	return nil
}

func (p *turtleParser) baseDecl(dotted bool) error {
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.base = iri
	if dotted {
		p.skipWS()
		if p.peek() != '.' {
			return p.errf("@base requires a terminating '.'")
		}
		p.pos++
	}
	return nil
}

// prefixName parses "ex:" (possibly the empty prefix ":").
func (p *turtleParser) prefixName() (string, error) {
	start := p.pos
	for p.pos < len(p.src) && isPNChar(p.src[p.pos]) {
		p.pos++
	}
	if p.peek() != ':' {
		return "", p.errf("expected prefix name ending in ':'")
	}
	name := p.src[start:p.pos]
	p.pos++
	return name, nil
}

func isPNChar(c byte) bool {
	return c == '_' || c == '-' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (p *turtleParser) iriRef() (string, error) {
	if p.peek() != '<' {
		return "", p.errf("expected IRI, got %q", p.peek())
	}
	p.pos++
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return "", p.errf("unterminated IRI")
	}
	iri := p.src[p.pos : p.pos+end]
	p.pos += end + 1
	if p.base != "" && !strings.Contains(iri, ":") {
		iri = p.base + iri
	}
	return iri, nil
}

// triples parses "subject predicateObjectList ." with ';' and ',' lists.
func (p *turtleParser) triples() error {
	subj, err := p.subject()
	if err != nil {
		return err
	}
	for {
		p.skipWS()
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, err := p.object()
			if err != nil {
				return err
			}
			p.g.Add(subj, pred, obj)
			p.skipWS()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if p.peek() == ';' {
			p.pos++
			p.skipWS()
			// A dangling ';' before '.' is legal Turtle.
			if p.peek() == '.' {
				p.pos++
				return nil
			}
			continue
		}
		if p.peek() == '.' {
			p.pos++
			return nil
		}
		return p.errf("expected ';', ',' or '.', got %q", p.peek())
	}
}

func (p *turtleParser) subject() (Term, error) {
	switch {
	case p.peek() == '<':
		iri, err := p.iriRef()
		return NewIRI(iri), err
	case strings.HasPrefix(p.src[p.pos:], "_:"):
		return p.blankNode()
	case p.peek() == '[':
		return Term{}, p.errf("anonymous blank nodes [ ] are not supported by this loader")
	case p.peek() == '(':
		return Term{}, p.errf("collections ( ) are not supported by this loader")
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) predicate() (Term, error) {
	if p.peek() == 'a' && p.pos+1 < len(p.src) && !isPNChar(p.src[p.pos+1]) && p.src[p.pos+1] != ':' {
		p.pos++
		return NewIRI(RDFType), nil
	}
	if p.peek() == '<' {
		iri, err := p.iriRef()
		return NewIRI(iri), err
	}
	return p.prefixedName()
}

func (p *turtleParser) object() (Term, error) {
	c := p.peek()
	switch {
	case c == '<':
		iri, err := p.iriRef()
		return NewIRI(iri), err
	case strings.HasPrefix(p.src[p.pos:], "_:"):
		return p.blankNode()
	case c == '"' || c == '\'':
		return p.literal()
	case c == '[':
		return Term{}, p.errf("anonymous blank nodes [ ] are not supported by this loader")
	case c == '(':
		return Term{}, p.errf("collections ( ) are not supported by this loader")
	case c == '+' || c == '-' || c >= '0' && c <= '9':
		return p.numericLiteral()
	case p.hasKeyword("true") || p.hasKeyword("false"):
		return p.booleanLiteral()
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) blankNode() (Term, error) {
	p.pos += 2
	start := p.pos
	for p.pos < len(p.src) && isPNChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return Term{}, p.errf("empty blank node label")
	}
	return NewBlank(p.src[start:p.pos]), nil
}

func (p *turtleParser) prefixedName() (Term, error) {
	start := p.pos
	for p.pos < len(p.src) && isPNChar(p.src[p.pos]) {
		p.pos++
	}
	if p.peek() != ':' {
		return Term{}, p.errf("expected a term, got %q", p.src[start:min(start+12, len(p.src))])
	}
	prefix := p.src[start:p.pos]
	p.pos++
	ns, ok := p.prefixes[prefix]
	if !ok {
		return Term{}, p.errf("undeclared prefix %q", prefix)
	}
	localStart := p.pos
	for p.pos < len(p.src) && (isPNChar(p.src[p.pos]) || p.src[p.pos] == '.') && !p.localEndsHere() {
		p.pos++
	}
	return NewIRI(ns + p.src[localStart:p.pos]), nil
}

// localEndsHere reports whether the current '.' terminates the statement
// (followed by whitespace/EOF) rather than being part of a local name.
func (p *turtleParser) localEndsHere() bool {
	if p.src[p.pos] != '.' {
		return false
	}
	if p.pos+1 >= len(p.src) {
		return true
	}
	next := p.src[p.pos+1]
	return next == ' ' || next == '\t' || next == '\n' || next == '\r' || next == '#'
}

func (p *turtleParser) literal() (Term, error) {
	quote := p.peek()
	long := strings.HasPrefix(p.src[p.pos:], strings.Repeat(string(quote), 3))
	var lex string
	if long {
		p.pos += 3
		end := strings.Index(p.src[p.pos:], strings.Repeat(string(quote), 3))
		if end < 0 {
			return Term{}, p.errf("unterminated long string")
		}
		lex = p.src[p.pos : p.pos+end]
		p.line += strings.Count(lex, "\n")
		p.pos += end + 3
	} else {
		p.pos++
		var b strings.Builder
		for {
			if p.pos >= len(p.src) || p.src[p.pos] == '\n' {
				return Term{}, p.errf("unterminated string")
			}
			c := p.src[p.pos]
			if c == quote {
				p.pos++
				break
			}
			if c == '\\' {
				p.pos++
				if p.pos >= len(p.src) {
					return Term{}, p.errf("dangling escape")
				}
				switch p.src[p.pos] {
				case 't':
					b.WriteByte('\t')
				case 'n':
					b.WriteByte('\n')
				case 'r':
					b.WriteByte('\r')
				case '"':
					b.WriteByte('"')
				case '\'':
					b.WriteByte('\'')
				case '\\':
					b.WriteByte('\\')
				default:
					return Term{}, p.errf("unsupported escape \\%c", p.src[p.pos])
				}
				p.pos++
				continue
			}
			b.WriteByte(c)
			p.pos++
		}
		lex = b.String()
	}
	// Optional @lang or ^^datatype.
	if p.peek() == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && (isPNChar(p.src[p.pos])) {
			p.pos++
		}
		if p.pos == start {
			return Term{}, p.errf("empty language tag")
		}
		return NewLangLiteral(lex, p.src[start:p.pos]), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		var dt Term
		var err error
		if p.peek() == '<' {
			var iri string
			iri, err = p.iriRef()
			dt = NewIRI(iri)
		} else {
			dt, err = p.prefixedName()
		}
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

func (p *turtleParser) numericLiteral() (Term, error) {
	start := p.pos
	if p.peek() == '+' || p.peek() == '-' {
		p.pos++
	}
	isDouble := false
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= '0' && c <= '9' {
			p.pos++
			continue
		}
		if c == '.' && !p.localEndsHere() {
			isDouble = true
			p.pos++
			continue
		}
		if c == 'e' || c == 'E' {
			isDouble = true
			p.pos++
			if p.peek() == '+' || p.peek() == '-' {
				p.pos++
			}
			continue
		}
		break
	}
	lex := p.src[start:p.pos]
	if lex == "" || lex == "+" || lex == "-" {
		return Term{}, p.errf("malformed numeric literal")
	}
	if isDouble {
		return NewTypedLiteral(lex, XSDDouble), nil
	}
	return NewTypedLiteral(lex, XSDInteger), nil
}

func (p *turtleParser) booleanLiteral() (Term, error) {
	const boolIRI = "http://www.w3.org/2001/XMLSchema#boolean"
	if p.hasKeyword("true") {
		p.pos += 4
		return NewTypedLiteral("true", boolIRI), nil
	}
	p.pos += 5
	return NewTypedLiteral("false", boolIRI), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
