package rdf

import (
	"strings"
	"testing"
)

const sampleTTL = `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@base <http://base.org/> .

# people
ex:alice a ex:Person ;
    ex:name "Alice" ;
    ex:age 30 ;
    ex:knows ex:bob , ex:carol .

ex:bob ex:name "Bob"@en ;
    ex:height 1.85 ;
    ex:active true .

<relative> ex:knows ex:alice .
_:b1 ex:p ex:alice .
ex:doc ex:text """multi
line""" .
ex:val ex:score "9"^^xsd:integer .
`

func TestReadTurtle(t *testing.T) {
	g, err := ReadTurtle(strings.NewReader(sampleTTL))
	if err != nil {
		t.Fatal(err)
	}
	has := func(s, p Term, o Term) bool {
		si, ok1 := g.Dict.Lookup(s)
		pi, ok2 := g.Dict.Lookup(p)
		oi, ok3 := g.Dict.Lookup(o)
		if !ok1 || !ok2 || !ok3 {
			return false
		}
		for _, tr := range g.Triples {
			if tr.S == si && tr.P == pi && tr.O == oi {
				return true
			}
		}
		return false
	}
	ex := func(l string) Term { return NewIRI("http://example.org/" + l) }
	cases := []struct {
		s, p, o Term
	}{
		{ex("alice"), NewIRI(RDFType), ex("Person")},
		{ex("alice"), ex("name"), NewLiteral("Alice")},
		{ex("alice"), ex("age"), NewTypedLiteral("30", XSDInteger)},
		{ex("alice"), ex("knows"), ex("bob")},
		{ex("alice"), ex("knows"), ex("carol")},
		{ex("bob"), ex("name"), NewLangLiteral("Bob", "en")},
		{ex("bob"), ex("height"), NewTypedLiteral("1.85", XSDDouble)},
		{ex("bob"), ex("active"), NewTypedLiteral("true", "http://www.w3.org/2001/XMLSchema#boolean")},
		{NewIRI("http://base.org/relative"), ex("knows"), ex("alice")},
		{NewBlank("b1"), ex("p"), ex("alice")},
		{ex("doc"), ex("text"), NewLiteral("multi\nline")},
		{ex("val"), ex("score"), NewTypedLiteral("9", "http://www.w3.org/2001/XMLSchema#integer")},
	}
	for _, c := range cases {
		if !has(c.s, c.p, c.o) {
			t.Errorf("missing triple %v %v %v", c.s, c.p, c.o)
		}
	}
	if g.Len() != len(cases) {
		t.Errorf("parsed %d triples, want %d", g.Len(), len(cases))
	}
}

func TestTurtleSPARQLStylePrefix(t *testing.T) {
	in := "PREFIX ex: <http://e.org/>\nex:a ex:p ex:b ."
	g, err := ReadTurtle(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Errorf("len = %d", g.Len())
	}
}

func TestTurtleDanglingSemicolon(t *testing.T) {
	in := "@prefix e: <u:> .\ne:a e:p e:b ; .\n"
	g, err := ReadTurtle(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Errorf("len = %d", g.Len())
	}
}

func TestTurtleErrors(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"undeclared prefix", "ex:a ex:p ex:b .", "undeclared prefix"},
		{"bad prefix decl", "@prefix ex <u:> .", "':'"},
		{"prefix without dot", "@prefix ex: <u:>", "terminating"},
		{"base without dot", "@base <u:>", "terminating"},
		{"unterminated iri", "@prefix e: <u:> .\ne:a e:p <b .", "unterminated IRI"},
		{"unterminated string", "@prefix e: <u:> .\ne:a e:p \"x .", "unterminated string"},
		{"unterminated long", `@prefix e: <u:> .` + "\n" + `e:a e:p """x .`, "unterminated long"},
		{"bad escape", "@prefix e: <u:> .\ne:a e:p \"x\\q\" .", "unsupported escape"},
		{"collection", "@prefix e: <u:> .\ne:a e:p ( e:b ) .", "not supported"},
		{"anon blank", "@prefix e: <u:> .\ne:a e:p [ ] .", "not supported"},
		{"anon blank subject", "[ ] <u:p> <u:o> .", "not supported"},
		{"missing dot", "@prefix e: <u:> .\ne:a e:p e:b", `expected ';'`},
		{"bad number", "@prefix e: <u:> .\ne:a e:p + .", "malformed numeric"},
		{"empty blank", "_: <u:p> <u:o> .", "empty blank node"},
		{"empty lang", "@prefix e: <u:> .\ne:a e:p \"x\"@ .", "empty language"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadTurtle(strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
}

func TestTurtleErrorLineNumbers(t *testing.T) {
	in := "@prefix e: <u:> .\n\n\ne:a e:p zz:b .\n"
	_, err := ReadTurtle(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("err = %v, want line 4", err)
	}
}

func TestTurtleComments(t *testing.T) {
	in := "# leading comment\n@prefix e: <u:> . # trailing\ne:a e:p e:b . # end\n"
	g, err := ReadTurtle(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Errorf("len = %d", g.Len())
	}
}

func TestTurtleMatchesNTriples(t *testing.T) {
	ttl := "@prefix e: <http://e/> .\ne:s e:p e:o ; e:q \"v\" .\n"
	nt := `<http://e/s> <http://e/p> <http://e/o> .
<http://e/s> <http://e/q> "v" .`
	g1, err := ReadTurtle(strings.NewReader(ttl))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ReadNTriples(strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	if g1.Len() != g2.Len() {
		t.Fatalf("lens differ: %d vs %d", g1.Len(), g2.Len())
	}
	set := map[string]bool{}
	for _, tr := range g1.Triples {
		set[g1.Decode(tr).String()] = true
	}
	for _, tr := range g2.Triples {
		if !set[g2.Decode(tr).String()] {
			t.Errorf("missing %s", g2.Decode(tr))
		}
	}
}

func TestTurtleNegativeAndExponentNumbers(t *testing.T) {
	in := "@prefix e: <u:> .\ne:a e:p -5 , 2.5E3 , +7 .\n"
	g, err := ReadTurtle(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("len = %d", g.Len())
	}
	wants := map[Term]bool{
		NewTypedLiteral("-5", XSDInteger):   false,
		NewTypedLiteral("2.5E3", XSDDouble): false,
		NewTypedLiteral("+7", XSDInteger):   false,
	}
	for _, tr := range g.Triples {
		d := g.Decode(tr)
		if _, ok := wants[d.O]; ok {
			wants[d.O] = true
		}
	}
	for term, seen := range wants {
		if !seen {
			t.Errorf("missing numeric literal %v", term)
		}
	}
}
