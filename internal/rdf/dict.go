package rdf

import (
	"fmt"
	"sync"
)

// ID is a dictionary-encoded term identifier. IDs are dense, starting at 0,
// assigned in first-seen order. The zero value is a valid ID (the first
// interned term), so code that needs a sentinel should use NoID.
type ID uint32

// NoID is a sentinel that never names an interned term.
const NoID = ID(^uint32(0))

// Dict is a bidirectional dictionary between Terms and dense IDs.
//
// All methods are safe for concurrent use, including Intern: the dictionary
// only grows and existing IDs never change, so readers racing an Intern see
// either the pre- or post-insertion dictionary, both of which are
// consistent. Live ingestion relies on this — walk runners resolve terms
// while the ingest path interns new ones.
//
// The reverse map is built lazily on the first Intern or Lookup (guarded by
// a sync.Once, so concurrent first Lookups are safe): a dictionary restored
// from a store snapshot pays for term hashing only if something actually
// resolves terms by value.
type Dict struct {
	mu      sync.RWMutex
	terms   []Term
	ids     map[Term]ID
	idsOnce sync.Once
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{}
}

// DictFromTerms wraps an already-deduplicated term slice, which is retained
// (term i gets ID i). The reverse map is deferred until first use; callers
// that only ever resolve IDs to terms never pay for it. This is the
// snapshot-load constructor.
func DictFromTerms(terms []Term) *Dict {
	return &Dict{terms: terms}
}

// ensureIDs builds the reverse map from the term slice on first use.
func (d *Dict) ensureIDs() {
	d.idsOnce.Do(func() {
		d.ids = make(map[Term]ID, len(d.terms))
		for i, t := range d.terms {
			if _, dup := d.ids[t]; !dup {
				d.ids[t] = ID(i)
			}
		}
	})
}

// Intern returns the ID for t, assigning a fresh one if t is new.
func (d *Dict) Intern(t Term) ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ensureIDs()
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := ID(len(d.terms))
	d.terms = append(d.terms, t)
	d.ids[t] = id
	return id
}

// InternIRI is shorthand for Intern(NewIRI(iri)).
func (d *Dict) InternIRI(iri string) ID { return d.Intern(NewIRI(iri)) }

// Lookup returns the ID for t and whether t has been interned.
func (d *Dict) Lookup(t Term) (ID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.ensureIDs()
	id, ok := d.ids[t]
	return id, ok
}

// LookupIRI returns the ID for the IRI and whether it has been interned.
func (d *Dict) LookupIRI(iri string) (ID, bool) { return d.Lookup(NewIRI(iri)) }

// Term returns the term with the given ID. It panics if id is out of range,
// which always indicates a programming error (IDs only come from this Dict).
func (d *Dict) Term(id ID) Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.terms) {
		panic(fmt.Sprintf("rdf: ID %d out of range (dict has %d terms)", id, len(d.terms)))
	}
	return d.terms[id]
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// Triple is a dictionary-encoded RDF triple.
type Triple struct {
	S, P, O ID
}

// String renders the encoded triple; useful only for debugging since it shows
// raw IDs.
func (t Triple) String() string { return fmt.Sprintf("(%d %d %d)", t.S, t.P, t.O) }

// DecodedTriple is a triple of decoded terms, used at the I/O boundary.
type DecodedTriple struct {
	S, P, O Term
}

// String renders the triple in N-Triples syntax (without the trailing dot).
func (t DecodedTriple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String()
}

// Graph is a dictionary plus a set of encoded triples: the in-memory
// representation of an RDF graph before indexing. Duplicate triples are
// removed by Dedup (loaders call it for you).
type Graph struct {
	Dict    *Dict
	Triples []Triple
}

// NewGraph returns an empty graph with a fresh dictionary.
func NewGraph() *Graph {
	return &Graph{Dict: NewDict()}
}

// Add encodes and appends one decoded triple.
func (g *Graph) Add(s, p, o Term) {
	g.Triples = append(g.Triples, Triple{g.Dict.Intern(s), g.Dict.Intern(p), g.Dict.Intern(o)})
}

// AddIRIs appends a triple of three IRIs, a common case when generating data.
func (g *Graph) AddIRIs(s, p, o string) {
	g.Add(NewIRI(s), NewIRI(p), NewIRI(o))
}

// AddEncoded appends an already-encoded triple. The caller must ensure the
// IDs come from g.Dict.
func (g *Graph) AddEncoded(t Triple) { g.Triples = append(g.Triples, t) }

// Len returns the number of triples (including duplicates until Dedup runs).
func (g *Graph) Len() int { return len(g.Triples) }

// Dedup sorts the triples in (S,P,O) order and removes duplicates, returning
// the number of duplicates removed. The sort is the radix sort of
// SortTriples, so repeated dedup passes during ingest stay O(n) rather than
// O(n log n).
func (g *Graph) Dedup() int {
	SortTriples(g.Triples, FieldS, FieldP, FieldO)
	n := len(g.Triples)
	out := g.Triples[:0]
	var prev Triple
	for i, t := range g.Triples {
		if i == 0 || t != prev {
			out = append(out, t)
			prev = t
		}
	}
	g.Triples = out
	return n - len(out)
}

// Decode returns the decoded form of an encoded triple.
func (g *Graph) Decode(t Triple) DecodedTriple {
	return DecodedTriple{g.Dict.Term(t.S), g.Dict.Term(t.P), g.Dict.Term(t.O)}
}
