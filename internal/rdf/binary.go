package rdf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"
)

// Binary snapshot format for graphs: a compact dictionary dump followed by
// the encoded triples. Loading a snapshot is much faster than re-parsing
// N-Triples (no tokenization, no term re-interning), which matters for the
// synthetic evaluation datasets.
//
// Layout (all integers little-endian):
//
//	magic "KGX1"
//	u32 termCount
//	  per term: u8 kind, uvarint len + bytes value,
//	            uvarint len + bytes datatype, uvarint len + bytes lang
//	u32 tripleCount
//	  per triple: u32 s, u32 p, u32 o
const binaryMagic = "KGX1"

// WriteBinary writes the graph snapshot to w.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var u32 [4]byte
	writeU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		bw.Write(u32[:])
	}
	writeStr := func(s string) {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], uint64(len(s)))
		bw.Write(tmp[:n])
		bw.WriteString(s)
	}
	writeU32(uint32(g.Dict.Len()))
	for i := 0; i < g.Dict.Len(); i++ {
		t := g.Dict.Term(ID(i))
		bw.WriteByte(byte(t.Kind))
		writeStr(t.Value)
		writeStr(t.Datatype)
		writeStr(t.Lang)
	}
	writeU32(uint32(len(g.Triples)))
	for _, t := range g.Triples {
		writeU32(uint32(t.S))
		writeU32(uint32(t.P))
		writeU32(uint32(t.O))
	}
	return bw.Flush()
}

// minTermBytes and minTripleBytes are the smallest possible encodings of one
// term (kind byte plus three zero-length varints) and one triple (three
// u32s). They bound how many records a snapshot of known size can possibly
// hold, so hostile headers are rejected before any decoding work.
const (
	minTermBytes   = 4
	minTripleBytes = 12
)

// inputSize reports the total size of the input when the reader exposes one
// (bytes.Reader, strings.Reader, os.File, ...). Size-oblivious readers
// return ok=false and fall back to incremental EOF detection.
func inputSize(r io.Reader) (int64, bool) {
	switch v := r.(type) {
	case interface{ Size() int64 }:
		return v.Size(), true
	case interface{ Stat() (os.FileInfo, error) }:
		if fi, err := v.Stat(); err == nil && fi.Mode().IsRegular() {
			return fi.Size(), true
		}
	}
	return 0, false
}

// ReadBinary reads a graph snapshot written by WriteBinary. Counts declared
// by the header are validated against the input size when the reader exposes
// one, so a hostile header cannot trigger large preallocations or long
// decode loops; out-of-range triple IDs are rejected rather than silently
// building a corrupt dictionary.
func ReadBinary(r io.Reader) (*Graph, error) {
	total, totalKnown := inputSize(r)
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("rdf: reading snapshot magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("rdf: not a graph snapshot (magic %q)", magic)
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	readStr := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > 1<<30 {
			return "", fmt.Errorf("rdf: implausible string length %d in snapshot", n)
		}
		// Never allocate more than is plausibly present: read in bounded
		// chunks so a corrupt length fails on EOF instead of exhausting
		// memory (found by fuzzing).
		var sb strings.Builder
		remaining := n
		var chunk [4096]byte
		for remaining > 0 {
			k := uint64(len(chunk))
			if remaining < k {
				k = remaining
			}
			if _, err := io.ReadFull(br, chunk[:k]); err != nil {
				return "", err
			}
			sb.Write(chunk[:k])
			remaining -= k
		}
		return sb.String(), nil
	}

	g := NewGraph()
	termCount, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("rdf: reading term count: %w", err)
	}
	if totalKnown && int64(termCount)*minTermBytes > total {
		return nil, fmt.Errorf("rdf: term count %d exceeds what %d input bytes can hold", termCount, total)
	}
	for i := uint32(0); i < termCount; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("rdf: reading term %d: %w", i, err)
		}
		if TermKind(kind) > BlankNode {
			return nil, fmt.Errorf("rdf: term %d has invalid kind %d", i, kind)
		}
		value, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("rdf: reading term %d value: %w", i, err)
		}
		datatype, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("rdf: reading term %d datatype: %w", i, err)
		}
		lang, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("rdf: reading term %d lang: %w", i, err)
		}
		id := g.Dict.Intern(Term{Kind: TermKind(kind), Value: value, Datatype: datatype, Lang: lang})
		if id != ID(i) {
			return nil, fmt.Errorf("rdf: duplicate term at snapshot index %d", i)
		}
	}
	tripleCount, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("rdf: reading triple count: %w", err)
	}
	if totalKnown && int64(tripleCount)*minTripleBytes > total {
		return nil, fmt.Errorf("rdf: triple count %d exceeds what %d input bytes can hold", tripleCount, total)
	}
	// Cap the preallocation: a corrupt count must fail on EOF, not OOM.
	prealloc := tripleCount
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	g.Triples = make([]Triple, 0, prealloc)
	for i := uint32(0); i < tripleCount; i++ {
		s, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("rdf: reading triple %d: %w", i, err)
		}
		p, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("rdf: reading triple %d: %w", i, err)
		}
		o, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("rdf: reading triple %d: %w", i, err)
		}
		if s >= termCount || p >= termCount || o >= termCount {
			return nil, fmt.Errorf("rdf: triple %d references term beyond dictionary", i)
		}
		g.Triples = append(g.Triples, Triple{ID(s), ID(p), ID(o)})
	}
	return g, nil
}
