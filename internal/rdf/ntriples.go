package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseError describes a syntax error in N-Triples input.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// ReadNTriples parses N-Triples from r into a new Graph. Comment lines
// (starting with '#') and blank lines are skipped. The triples are
// deduplicated before returning.
func ReadNTriples(r io.Reader) (*Graph, error) {
	g := NewGraph()
	if err := ReadNTriplesInto(r, g); err != nil {
		return nil, err
	}
	g.Dedup()
	return g, nil
}

// ReadNTriplesInto parses N-Triples from r, appending to g. It does not
// deduplicate; callers that need set semantics should call g.Dedup after all
// inputs are loaded.
func ReadNTriplesInto(r io.Reader, g *Graph) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, p, o, err := parseTripleLine(line, lineNo)
		if err != nil {
			return err
		}
		g.Add(s, p, o)
	}
	return sc.Err()
}

// ParseTripleLine parses one "<s> <p> <o> ." N-Triples line into decoded
// terms. It is the line-at-a-time entry point for ingest endpoints that
// receive triples outside a full document.
func ParseTripleLine(line string) (DecodedTriple, error) {
	s, p, o, err := parseTripleLine(strings.TrimSpace(line), 1)
	if err != nil {
		return DecodedTriple{}, err
	}
	return DecodedTriple{S: s, P: p, O: o}, nil
}

// parseTripleLine parses one "<s> <p> <o> ." line.
func parseTripleLine(line string, lineNo int) (s, p, o Term, err error) {
	pp := &lineParser{line: line, lineNo: lineNo}
	s, err = pp.term()
	if err != nil {
		return
	}
	p, err = pp.term()
	if err != nil {
		return
	}
	o, err = pp.term()
	if err != nil {
		return
	}
	pp.skipSpace()
	if !pp.eat('.') {
		err = pp.errf("expected '.' terminating triple")
		return
	}
	pp.skipSpace()
	if pp.pos != len(pp.line) {
		err = pp.errf("trailing content after '.'")
	}
	return
}

type lineParser struct {
	line   string
	pos    int
	lineNo int
}

func (p *lineParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.lineNo, Col: p.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser) skipSpace() {
	for p.pos < len(p.line) && (p.line[p.pos] == ' ' || p.line[p.pos] == '\t') {
		p.pos++
	}
}

func (p *lineParser) eat(c byte) bool {
	if p.pos < len(p.line) && p.line[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *lineParser) peek() byte {
	if p.pos < len(p.line) {
		return p.line[p.pos]
	}
	return 0
}

// term parses the next term: an IRI, a blank node, or a literal.
func (p *lineParser) term() (Term, error) {
	p.skipSpace()
	switch p.peek() {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	case 0:
		return Term{}, p.errf("unexpected end of line, expected a term")
	default:
		return Term{}, p.errf("unexpected character %q, expected a term", p.peek())
	}
}

func (p *lineParser) iri() (Term, error) {
	p.eat('<')
	end := strings.IndexByte(p.line[p.pos:], '>')
	if end < 0 {
		return Term{}, p.errf("unterminated IRI")
	}
	iri := p.line[p.pos : p.pos+end]
	p.pos += end + 1
	return NewIRI(iri), nil
}

func (p *lineParser) blank() (Term, error) {
	if !strings.HasPrefix(p.line[p.pos:], "_:") {
		return Term{}, p.errf("malformed blank node")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.line) && !isTermBreak(p.line[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return Term{}, p.errf("empty blank node label")
	}
	return NewBlank(p.line[start:p.pos]), nil
}

func isTermBreak(c byte) bool { return c == ' ' || c == '\t' }

func (p *lineParser) literal() (Term, error) {
	p.eat('"')
	var b strings.Builder
	for {
		if p.pos >= len(p.line) {
			return Term{}, p.errf("unterminated literal")
		}
		c := p.line[p.pos]
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' {
			p.pos++
			if p.pos >= len(p.line) {
				return Term{}, p.errf("dangling escape in literal")
			}
			switch p.line[p.pos] {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'u', 'U':
				return Term{}, p.errf("\\u escapes are not supported by this loader")
			default:
				return Term{}, p.errf("unknown escape \\%c in literal", p.line[p.pos])
			}
			p.pos++
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	lex := b.String()
	// Optional suffix: @lang or ^^<datatype>.
	if p.eat('@') {
		start := p.pos
		for p.pos < len(p.line) && !isTermBreak(p.line[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return Term{}, p.errf("empty language tag")
		}
		return NewLangLiteral(lex, p.line[start:p.pos]), nil
	}
	if strings.HasPrefix(p.line[p.pos:], "^^") {
		p.pos += 2
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

// WriteNTriples serializes the graph to w in N-Triples syntax.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples {
		d := g.Decode(t)
		if _, err := bw.WriteString(d.S.String()); err != nil {
			return err
		}
		bw.WriteByte(' ')
		bw.WriteString(d.P.String())
		bw.WriteByte(' ')
		bw.WriteString(d.O.String())
		if _, err := bw.WriteString(" .\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
