package rdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := NewGraph()
	g.Add(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewLiteral("plain"))
	g.Add(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewLangLiteral("hej", "sv"))
	g.Add(NewIRI("s2"), NewIRI("p2"), NewTypedLiteral("42", XSDInteger))
	g.Add(NewBlank("b1"), NewIRI("p2"), NewIRI("o"))
	g.Dedup()

	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() || g2.Dict.Len() != g.Dict.Len() {
		t.Fatalf("sizes changed: %d/%d vs %d/%d", g2.Len(), g2.Dict.Len(), g.Len(), g.Dict.Len())
	}
	for i, tr := range g.Triples {
		if g2.Triples[i] != tr {
			t.Errorf("triple %d differs", i)
		}
	}
	for i := 0; i < g.Dict.Len(); i++ {
		if g.Dict.Term(ID(i)) != g2.Dict.Term(ID(i)) {
			t.Errorf("term %d differs: %v vs %v", i, g.Dict.Term(ID(i)), g2.Dict.Term(ID(i)))
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(labels []string, raw []uint8) bool {
		g := NewGraph()
		// Intern a varied dictionary.
		for _, l := range labels {
			g.Dict.Intern(NewLiteral(l))
			g.Dict.InternIRI(l)
		}
		if g.Dict.Len() == 0 {
			g.Dict.InternIRI("x")
		}
		n := g.Dict.Len()
		for i := 0; i+2 < len(raw); i += 3 {
			g.AddEncoded(Triple{
				S: ID(int(raw[i]) % n),
				P: ID(int(raw[i+1]) % n),
				O: ID(int(raw[i+2]) % n),
			})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g2.Len() != g.Len() {
			return false
		}
		for i := range g.Triples {
			if g.Triples[i] != g2.Triples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReadBinaryErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"empty", "", "magic"},
		{"bad magic", "NOPE", "not a graph snapshot"},
		{"truncated term count", "KGX1\x01", "term count"},
		{"truncated terms", "KGX1\x02\x00\x00\x00", "term 0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadBinary(strings.NewReader(c.data))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
}

func TestReadBinaryRejectsDanglingIDs(t *testing.T) {
	// Craft a snapshot with a triple referencing a term beyond the dict.
	g := NewGraph()
	g.AddIRIs("a", "b", "c")
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The last 12 bytes are the triple; corrupt the subject to a huge ID.
	data[len(data)-12] = 0xff
	data[len(data)-11] = 0xff
	_, err := ReadBinary(bytes.NewReader(data))
	if err == nil || !strings.Contains(err.Error(), "beyond dictionary") {
		t.Errorf("err = %v, want dangling-ID rejection", err)
	}
}

func TestReadBinaryRejectsBadKind(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("KGX1")
	buf.Write([]byte{1, 0, 0, 0}) // one term
	buf.WriteByte(99)             // invalid kind
	_, err := ReadBinary(&buf)
	if err == nil || !strings.Contains(err.Error(), "invalid kind") {
		t.Errorf("err = %v, want invalid-kind rejection", err)
	}
}
