package rdf

import (
	"math/rand"
	"sort"
	"testing"
)

// refSort is the comparator ordering SortTriples must reproduce.
func refSort(ts []Triple, p0, p1, p2 uint8) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if x, y := fieldOf(a, p0), fieldOf(b, p0); x != y {
			return x < y
		}
		if x, y := fieldOf(a, p1), fieldOf(b, p1); x != y {
			return x < y
		}
		return fieldOf(a, p2) < fieldOf(b, p2)
	})
}

func randomTriples(rng *rand.Rand, n int, maxID ID) []Triple {
	ts := make([]Triple, n)
	for i := range ts {
		ts[i] = Triple{
			S: ID(rng.Intn(int(maxID) + 1)),
			P: ID(rng.Intn(int(maxID) + 1)),
			O: ID(rng.Intn(int(maxID) + 1)),
		}
	}
	return ts
}

// TestSortTriplesMatchesReference exercises both the radix path (dense IDs,
// large n) and the comparator fallback (tiny n, sparse IDs) against
// sort.Slice, over every permutation of the three key fields.
func TestSortTriplesMatchesReference(t *testing.T) {
	perms := [][3]uint8{
		{FieldS, FieldP, FieldO}, {FieldS, FieldO, FieldP},
		{FieldP, FieldS, FieldO}, {FieldP, FieldO, FieldS},
		{FieldO, FieldS, FieldP}, {FieldO, FieldP, FieldS},
	}
	cases := []struct {
		name  string
		n     int
		maxID ID
	}{
		{"empty", 0, 10},
		{"single", 1, 10},
		{"tiny-comparator", 16, 1000},
		{"boundary", smallSortCutoff, 50},
		{"dense-radix", 5000, 800},
		{"sparse-fallback", 200, 1 << 24}, // max far above 64n: comparator path
		{"duplicates", 3000, 7},           // long runs of equal keys
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(42))
		for _, p := range perms {
			got := randomTriples(rng, tc.n, tc.maxID)
			want := append([]Triple(nil), got...)
			SortTriples(got, p[0], p[1], p[2])
			refSort(want, p[0], p[1], p[2])
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s perm %v: triple %d = %v, want %v", tc.name, p, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSortTriplesNoIDKeys checks that NoID (the all-ones sentinel) never
// reaches the counting path's counts array, whose size is derived from the
// maximum ID: the sparse-max guard must route such inputs to the comparator.
func TestSortTriplesNoIDKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ts := randomTriples(rng, 1000, 50)
	ts[500].P = NoID
	want := append([]Triple(nil), ts...)
	SortTriples(ts, FieldP, FieldS, FieldO)
	refSort(want, FieldP, FieldS, FieldO)
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("triple %d = %v, want %v", i, ts[i], want[i])
		}
	}
	if last := ts[len(ts)-1]; last.P != NoID {
		t.Fatalf("NoID predicate not sorted last: %v", last)
	}
}

// TestSortTriplesStableOnEqualKeys verifies full-key ties keep their input
// order (the LSD passes must each be stable for the composition to be a
// correct three-key sort, and Dedup relies on equal triples ending adjacent).
func TestSortTriplesStableOnEqualKeys(t *testing.T) {
	ts := []Triple{{2, 1, 1}, {1, 1, 1}, {1, 1, 1}, {2, 1, 1}, {1, 1, 1}}
	SortTriples(ts, FieldS, FieldP, FieldO)
	for i := 1; i < len(ts); i++ {
		if fieldOf(ts[i-1], FieldS) > fieldOf(ts[i], FieldS) {
			t.Fatalf("not sorted at %d: %v", i, ts)
		}
	}
	if ts[0].S != 1 || ts[1].S != 1 || ts[2].S != 1 || ts[3].S != 2 || ts[4].S != 2 {
		t.Fatalf("unexpected order: %v", ts)
	}
}
