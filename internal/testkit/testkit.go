// Package testkit provides shared helpers for engine tests: deterministic
// random graphs and an independent brute-force query evaluator used as the
// ground-truth oracle. The oracle deliberately shares no code with the
// engines under test: it joins by nested loops over the raw triple list.
package testkit

import (
	"math/rand"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// GlobalGroup mirrors lftj.GlobalGroup without importing it.
const GlobalGroup = rdf.NoID

// RandomGraph builds a deterministic random graph with nSubj subjects,
// nPred predicates, nObj objects and about nTriples triples (duplicates are
// removed). Term IDs are assigned before any triples so tests can refer to
// them: subjects are IDs [0,nSubj), predicates [nSubj, nSubj+nPred), objects
// reuse the subject IDs for half of the draws (so chains exist) and fresh
// object IDs [nSubj+nPred, ...) otherwise.
func RandomGraph(seed int64, nSubj, nPred, nObj, nTriples int) *rdf.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := rdf.NewGraph()
	for i := 0; i < nSubj; i++ {
		g.Dict.InternIRI("s" + itoa(i))
	}
	for i := 0; i < nPred; i++ {
		g.Dict.InternIRI("p" + itoa(i))
	}
	// Fresh objects are integer literals (value i+1) so that SUM/AVG
	// aggregates have numeric data to chew on.
	for i := 0; i < nObj; i++ {
		g.Dict.Intern(rdf.NewTypedLiteral(itoa(i+1), rdf.XSDInteger))
	}
	for i := 0; i < nTriples; i++ {
		s := rdf.ID(rng.Intn(nSubj))
		p := rdf.ID(nSubj + rng.Intn(nPred))
		var o rdf.ID
		if rng.Intn(2) == 0 && nSubj > 1 {
			o = rdf.ID(rng.Intn(nSubj)) // chainable edge
		} else {
			o = rdf.ID(nSubj + nPred + rng.Intn(nObj))
		}
		g.AddEncoded(rdf.Triple{S: s, P: p, O: o})
	}
	g.Dedup()
	return g
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// ChainQuery builds a k-step path query over the random graph's predicates:
//
//	?x0 <p0> ?x1 . ?x1 <p1> ?x2 . ... ?x_{k-1} <p_{k-1}> ?xk
//
// with Alpha = ?x0 if grouped, Beta = ?xk.
func ChainQuery(g *rdf.Graph, preds []rdf.ID, grouped, distinct bool) *query.Query {
	q := &query.Query{Distinct: distinct, Beta: query.Var(len(preds))}
	if grouped {
		q.Alpha = 0
	} else {
		q.Alpha = query.NoVar
	}
	for i, p := range preds {
		q.Patterns = append(q.Patterns, query.Pattern{
			S: query.V(query.Var(i)),
			P: query.C(p),
			O: query.V(query.Var(i + 1)),
		})
	}
	return q
}

// GraphNums adapts a graph's dictionary to the query.NumSource interface, so
// the oracle can evaluate filters without an index.Store.
type GraphNums struct{ G *rdf.Graph }

// Numeric implements query.NumSource.
func (n GraphNums) Numeric(id rdf.ID) (float64, bool) {
	return rdf.NumericValue(n.G.Dict.Term(id))
}

type pair struct{ a, b rdf.ID }

// BruteForce evaluates the query by nested loops over the raw triples,
// honoring the query's Alpha/Beta/Distinct and Filters. It is exponential in
// the number of patterns and intended only for tiny test graphs.
func BruteForce(g *rdf.Graph, q *query.Query) map[rdf.ID]float64 {
	counts := make(map[rdf.ID]float64)
	denoms := make(map[rdf.ID]float64)
	seen := make(map[pair]bool)
	bruteInto(g, q, counts, denoms, seen)
	if q.Agg == query.AggAvg {
		for a := range counts {
			counts[a] /= denoms[a]
		}
	}
	return counts
}

// BruteForceUnion evaluates a union with SPARQL bag semantics: COUNT and SUM
// add up across branches, AVG is the ratio of the summed numerators and
// denominators, and DISTINCT deduplicates (group, β) pairs across branches.
func BruteForceUnion(g *rdf.Graph, u *query.UnionQuery) map[rdf.ID]float64 {
	counts := make(map[rdf.ID]float64)
	denoms := make(map[rdf.ID]float64)
	seen := make(map[pair]bool)
	for _, q := range u.Branches {
		bruteInto(g, q, counts, denoms, seen)
	}
	if u.Agg() == query.AggAvg {
		for a := range counts {
			counts[a] /= denoms[a]
		}
	}
	return counts
}

// bruteInto runs the nested-loop join of one query, accumulating into shared
// maps (shared across union branches so DISTINCT dedups cross-branch).
func bruteInto(g *rdf.Graph, q *query.Query, counts, denoms map[rdf.ID]float64, seen map[pair]bool) {
	nv := q.NumVars()
	bind := make([]rdf.ID, nv)
	for i := range bind {
		bind[i] = rdf.NoID
	}
	nums := GraphNums{G: g}

	match := func(a query.Atom, v rdf.ID) (rdf.ID, bool, bool) {
		// Returns (newBinding, needsBind, ok).
		if !a.IsVar() {
			return 0, false, a.ID == v
		}
		if bind[a.Var] != rdf.NoID {
			return 0, false, bind[a.Var] == v
		}
		return v, true, true
	}

	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Patterns) {
			for fi := range q.Filters {
				if !q.Filters[fi].Eval(nums, bind) {
					return
				}
			}
			a := GlobalGroup
			if q.Alpha != query.NoVar {
				a = bind[q.Alpha]
			}
			switch q.Agg {
			case query.AggSum, query.AggAvg:
				if v, ok := rdf.NumericValue(g.Dict.Term(bind[q.Beta])); ok {
					counts[a] += v
					denoms[a]++
				}
				return
			}
			if q.Distinct {
				k := pair{a, bind[q.Beta]}
				if seen[k] {
					return
				}
				seen[k] = true
			}
			counts[a]++
			return
		}
		p := q.Patterns[i]
		for _, tr := range g.Triples {
			var toSet [3]struct {
				v   query.Var
				val rdf.ID
			}
			n := 0
			ok := true
			for j, av := range []struct {
				a query.Atom
				v rdf.ID
			}{{p.S, tr.S}, {p.P, tr.P}, {p.O, tr.O}} {
				_ = j
				nv, needs, m := match(av.a, av.v)
				if !m {
					ok = false
					break
				}
				if needs {
					toSet[n].v = av.a.Var
					toSet[n].val = nv
					n++
				}
			}
			if !ok {
				continue
			}
			// A variable repeated inside one pattern would need a
			// consistency check here; the fragment forbids it and
			// Validate rejects it, so binding directly is safe.
			for k := 0; k < n; k++ {
				bind[toSet[k].v] = toSet[k].val
			}
			rec(i + 1)
			for k := 0; k < n; k++ {
				bind[toSet[k].v] = rdf.NoID
			}
		}
	}
	rec(0)
}

// BuildStore indexes the graph.
func BuildStore(g *rdf.Graph) *index.Store { return index.Build(g) }

// MapsEqual compares an engine result against the oracle within eps.
func MapsEqual(got, want map[rdf.ID]float64, eps float64) bool {
	if len(got) != len(want) {
		return false
	}
	for k, w := range want {
		gv, ok := got[k]
		if !ok {
			return false
		}
		d := gv - w
		if d < 0 {
			d = -d
		}
		if d > eps {
			return false
		}
	}
	return true
}
