// Convergence: traces the mean absolute error of Wander Join and Audit Join
// over time on one highly selective exploration query with COUNT(DISTINCT) —
// the regime of Fig. 8 where Wander Join's rejected walks and biased
// distinct handling keep its error high while Audit Join converges.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"kgexplore"
)

func main() {
	ds, err := kgexplore.GenerateDBpediaSim(0.03)
	if err != nil {
		log.Fatal(err)
	}

	// A depth-3 exploration: subclass descent, property pivot, then the
	// object-class chart — selective joins with projections, the worst case
	// for Wander Join.
	state := ds.Root()
	bars, err := ds.Chart(state, kgexplore.OpSubclass)
	if err != nil || len(bars) == 0 {
		log.Fatalf("subclass chart: %v", err)
	}
	classID, _ := ds.Dict().LookupIRI(bars[0].Category.Value)
	state, err = state.Select(kgexplore.OpSubclass, classID)
	if err != nil {
		log.Fatal(err)
	}
	bars, err = ds.Chart(state, kgexplore.OpOutProp)
	if err != nil {
		log.Fatal(err)
	}
	var propID kgexplore.ID
	for _, b := range bars {
		if v := b.Category.Value; len(v) > 2 && v[:2] == "p:" {
			propID, _ = ds.Dict().LookupIRI(v)
			break
		}
	}
	state, err = state.Select(kgexplore.OpOutProp, propID)
	if err != nil {
		log.Fatal(err)
	}
	q, err := state.Query(kgexplore.OpObject)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := ds.Compile(q)
	if err != nil {
		log.Fatal(err)
	}

	exact, err := ds.Exact(plan, kgexplore.EngineCTJ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\nexact groups: %d\n\n", q, len(exact))

	wj := ds.NewWanderJoin(plan, 3)
	aj := ds.NewAuditJoin(plan, kgexplore.AuditJoinOptions{
		Threshold: kgexplore.DefaultTippingThreshold,
		Seed:      3,
	})

	fmt.Printf("%-8s %14s %14s %12s %12s\n", "t", "WJ MAE", "AJ MAE", "WJ rej", "AJ rej")
	const interval = 100 * time.Millisecond
	ctx := context.Background()
	slice := kgexplore.DriveOptions{Budget: interval, Batch: 128}
	for step := 1; step <= 10; step++ {
		kgexplore.Drive(ctx, wj, slice)
		kgexplore.Drive(ctx, aj, slice)
		ws, as := wj.Snapshot(), aj.Snapshot()
		fmt.Printf("%-8v %13.2f%% %13.2f%% %11.1f%% %11.1f%%\n",
			time.Duration(step)*interval,
			100*mae(ws.Estimates, exact), 100*mae(as.Estimates, exact),
			100*ws.RejectionRate(), 100*as.RejectionRate())
	}
	fmt.Printf("\nAudit Join tipped on %d walks; cache: %+v\n", aj.Tipped(), aj.CacheStats())
}

func mae(est, exact map[kgexplore.ID]float64) float64 {
	if len(exact) == 0 {
		return 0
	}
	var sum float64
	for g, ex := range exact {
		d := ex - est[g]
		if d < 0 {
			d = -d
		}
		if ex > 0 {
			sum += d / ex
		} else if est[g] != 0 {
			sum++
		}
	}
	return sum / float64(len(exact))
}
