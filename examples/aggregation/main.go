// Aggregation: demonstrates the SUM and AVG extension (the paper lists
// aggregates beyond COUNT as future work, §IV-D) on a small sensor-style
// graph: readings attached to stations, stations typed by region. Exact
// results come from CTJ; online estimates from Audit Join, whose SUM
// estimator is unbiased by the same argument as the paper's Prop. IV.1.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"kgexplore"
)

func main() {
	// Build a synthetic measurement graph: 50 stations in 4 regions, each
	// with many numeric readings.
	g := kgexplore.NewGraph()
	rng := rand.New(rand.NewSource(7))
	regions := []string{"north", "south", "east", "west"}
	for s := 0; s < 50; s++ {
		station := fmt.Sprintf("station%d", s)
		region := regions[s%len(regions)]
		g.AddIRIs(station, "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", region)
		for r := 0; r < 40; r++ {
			g.Add(
				kgexplore.Term{Kind: 0, Value: station}, // IRI
				kgexplore.Term{Kind: 0, Value: "reading"},
				kgexplore.Term{Kind: 1, Value: fmt.Sprintf("%d", 10+rng.Intn(90))}, // numeric literal
			)
		}
	}
	ds, err := kgexplore.FromGraph(g, kgexplore.RootThing)
	if err != nil {
		log.Fatal(err)
	}

	for _, agg := range []string{"COUNT", "SUM", "AVG"} {
		src := fmt.Sprintf(`
			SELECT ?region %s(?v) WHERE {
				?st <reading> ?v .
				?st a ?region .
			} GROUP BY ?region`, agg)
		p, err := ds.ParseQuery(src)
		if err != nil {
			log.Fatal(err)
		}
		pl, err := ds.Compile(p.Query)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := ds.Exact(pl, kgexplore.EngineCTJ)
		if err != nil {
			log.Fatal(err)
		}
		aj := ds.NewAuditJoin(pl, kgexplore.AuditJoinOptions{
			Threshold: kgexplore.DefaultTippingThreshold,
			Seed:      1,
		})
		kgexplore.RunWalks(aj, 30000)
		est := aj.Snapshot().Estimates

		fmt.Printf("%s(?v) per region            exact    AJ estimate\n", agg)
		for _, b := range ds.BarsOf(exact, nil) {
			region := b.Category.Value
			id, _ := ds.Dict().LookupIRI(region)
			fmt.Printf("  %-24s %9.1f %12.1f\n", region, b.Count, est[id])
		}
		fmt.Println(strings.Repeat("-", 50))
	}
}
