// Faceted browsing: replays the paper's Example III.1 interaction pattern
// over the synthetic DBpedia-like dataset — descend the class hierarchy,
// pivot through a property, and inspect the resulting bar charts — using
// exact CTJ evaluation for the charts, as a faceted browser with modest data
// would.
package main

import (
	"fmt"
	"log"

	"kgexplore"
)

func main() {
	ds, err := kgexplore.GenerateDBpediaSim(0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d triples\n\n", ds.NumTriples())

	state := ds.Root()
	show := func(title string, bars []kgexplore.Bar) {
		fmt.Printf("%s (%d bars)\n", title, len(bars))
		n := len(bars)
		if n > 8 {
			n = 8
		}
		for _, b := range bars[:n] {
			fmt.Printf("  %-28s %8.0f\n", b.Category.Value, b.Count)
		}
		if len(bars) > n {
			fmt.Printf("  ... %d more\n", len(bars)-n)
		}
		fmt.Println()
	}

	// Step 1: subclasses of the root.
	bars, err := ds.Chart(state, kgexplore.OpSubclass)
	if err != nil {
		log.Fatal(err)
	}
	show("subclasses of owl:Thing", bars)

	// Click the largest subclass.
	top, _ := ds.Dict().LookupIRI(bars[0].Category.Value)
	state, err = state.Select(kgexplore.OpSubclass, top)
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: its subclasses.
	bars, err = ds.Chart(state, kgexplore.OpSubclass)
	if err != nil {
		log.Fatal(err)
	}
	show("subclasses of "+bars2label(ds, state), bars)
	if len(bars) > 0 {
		id, _ := ds.Dict().LookupIRI(bars[0].Category.Value)
		state, err = state.Select(kgexplore.OpSubclass, id)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Step 3: outgoing properties of the focused instances.
	bars, err = ds.Chart(state, kgexplore.OpOutProp)
	if err != nil {
		log.Fatal(err)
	}
	show("outgoing properties of "+bars2label(ds, state), bars)

	// Click the most frequent non-schema property and pivot to the objects.
	var propID kgexplore.ID
	found := false
	for _, b := range bars {
		v := b.Category.Value
		if len(v) > 2 && v[:2] == "p:" {
			propID, _ = ds.Dict().LookupIRI(v)
			found = true
			break
		}
	}
	if !found {
		log.Fatal("no domain property found in the chart")
	}
	state, err = state.Select(kgexplore.OpOutProp, propID)
	if err != nil {
		log.Fatal(err)
	}

	// Step 4: classes of the objects (object expansion).
	bars, err = ds.Chart(state, kgexplore.OpObject)
	if err != nil {
		log.Fatal(err)
	}
	show("classes of the objects reached via "+bars2label(ds, state), bars)
	fmt.Println("every chart above was computed exactly with Cached Trie Join")
}

func bars2label(ds *kgexplore.Dataset, s *kgexplore.ExploreState) string {
	return ds.Dict().Term(s.Category).Value
}
