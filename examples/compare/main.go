// Compare: explores two knowledge graphs side by side — the paper's
// envisaged extension of "allowing users to explore and contrast multiple
// knowledge graphs simultaneously" (§VI). A recorded exploration path is
// replayed on the DBpedia-like and LGD-like datasets and the root property
// charts are aligned by category.
package main

import (
	"fmt"
	"log"

	"kgexplore"
)

func main() {
	// Two graphs that share a schema: generate the same dataset at two
	// scales, standing in for two versions/editions of one knowledge graph.
	v1, err := kgexplore.GenerateDBpediaSim(0.01)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := kgexplore.GenerateDBpediaSim(0.03)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("comparing: v1 %d triples vs v2 %d triples\n\n", v1.NumTriples(), v2.NumTriples())

	// Empty path: compare the root subclass charts.
	bars, err := kgexplore.CompareChart(v1, v2, nil, kgexplore.OpSubclass)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %10s %10s %8s\n", "subclass of owl:Thing", "v1", "v2", "ratio")
	for i, b := range bars {
		if i == 10 {
			break
		}
		ratio := 0.0
		if b.A > 0 {
			ratio = b.B / b.A
		}
		fmt.Printf("%-24s %10.0f %10.0f %7.1fx\n", b.Category.Value, b.A, b.B, ratio)
	}

	// One step deeper: select the biggest class, compare its out-property
	// charts.
	steps := []kgexplore.PathStep{{Op: kgexplore.OpSubclass, Category: bars[0].Category}}
	deep, err := kgexplore.CompareChart(v1, v2, steps, kgexplore.OpOutProp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-24s %10s %10s\n", "out-props of "+bars[0].Category.Value, "v1", "v2")
	for i, b := range deep {
		if i == 10 {
			break
		}
		fmt.Printf("%-24s %10.0f %10.0f\n", b.Category.Value, b.A, b.B)
	}
}
