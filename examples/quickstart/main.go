// Quickstart: build a small graph, run one exploration query three ways —
// exactly with CTJ, and online with Wander Join and Audit Join — and print
// the per-group results.
package main

import (
	"fmt"
	"log"
	"strings"

	"kgexplore"
)

const data = `
<alice> <birthPlace> <paris> .
<bob>   <birthPlace> <paris> .
<carol> <birthPlace> <lima> .
<dave>  <birthPlace> <lima> .
<eve>   <birthPlace> <rome> .
<alice> a <Person> .
<bob>   a <Person> .
<carol> a <Person> .
<dave>  a <Person> .
<eve>   a <Robot> .
<paris> a <City> .
<lima>  a <City> .
<rome>  a <City> .
<lima>  a <Capital> .
`

func main() {
	// N-Triples requires full syntax; expand the `a` shorthand first.
	nt := strings.ReplaceAll(data, " a ", " <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ")
	ds, err := kgexplore.LoadNTriples(strings.NewReader(nt))
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Fig. 5 query: distinct birth places of persons, per class
	// of the place.
	parsed, err := ds.ParseQuery(`
		SELECT ?c COUNT(DISTINCT ?o) WHERE {
			?s <birthPlace> ?o .
			?s a <Person> .
			?o a ?c .
		} GROUP BY ?c`)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := ds.Compile(parsed.Query)
	if err != nil {
		log.Fatal(err)
	}

	// Exact evaluation with Cached Trie Join.
	exact, err := ds.Exact(plan, kgexplore.EngineCTJ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact (CTJ):")
	for _, bar := range ds.BarsOf(exact, nil) {
		fmt.Printf("  %-12s %g\n", bar.Category.Value, bar.Count)
	}

	// Online aggregation: Wander Join vs Audit Join after 20k walks.
	wj := ds.NewWanderJoin(plan, 1)
	kgexplore.RunWalks(wj, 20000)
	aj := ds.NewAuditJoin(plan, kgexplore.AuditJoinOptions{
		Threshold: kgexplore.DefaultTippingThreshold,
		Seed:      1,
	})
	kgexplore.RunWalks(aj, 20000)

	fmt.Println("\nWander Join estimate (biased for DISTINCT):")
	snap := wj.Snapshot()
	for _, bar := range ds.BarsOf(snap.Estimates, snap.CI) {
		fmt.Printf("  %-12s %6.2f ± %.2f\n", bar.Category.Value, bar.Count, bar.CI)
	}

	fmt.Println("\nAudit Join estimate (unbiased, paper Eq. 1):")
	snap = aj.Snapshot()
	for _, bar := range ds.BarsOf(snap.Estimates, snap.CI) {
		fmt.Printf("  %-12s %6.2f ± %.2f\n", bar.Category.Value, bar.Count, bar.CI)
	}
	fmt.Printf("\nAudit Join tipped to exact computation on %d of %d walks\n",
		aj.Tipped(), snap.Walks)
}
