// Graph profiling: the paper's motivating query (§I) — "compute the
// distribution of properties over all nodes", i.e. how many distinct
// subjects carry each property — took Virtuoso over five minutes on DBpedia.
// This example runs it on the synthetic DBpedia-like dataset with all four
// strategies and shows the cost ordering the paper reports:
// baseline > LFTJ > CTJ for exact answers, with Audit Join delivering a
// usable estimate in a fraction of CTJ's time.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"kgexplore"
)

func main() {
	ds, err := kgexplore.GenerateDBpediaSim(0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d triples\n\n", ds.NumTriples())

	// The out-property expansion of the root class: group all typed nodes
	// by outgoing property, counting distinct subjects.
	root := ds.Root()
	q, err := root.Query(kgexplore.OpOutProp)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := ds.Compile(q)
	if err != nil {
		log.Fatal(err)
	}

	// Exact strategies, timed.
	type exactRun struct {
		name   string
		engine kgexplore.ExactEngine
	}
	var exact map[kgexplore.ID]float64
	for _, er := range []exactRun{
		{"baseline (hash joins)", kgexplore.EngineBaseline},
		{"LFTJ (no cache)", kgexplore.EngineLFTJ},
		{"CTJ (cached)", kgexplore.EngineCTJ},
	} {
		start := time.Now()
		res, err := ds.Exact(plan, er.engine)
		if err != nil {
			fmt.Printf("%-22s failed: %v\n", er.name, err)
			continue
		}
		fmt.Printf("%-22s %10v  (%d property groups)\n",
			er.name, time.Since(start).Round(time.Microsecond), len(res))
		exact = res
	}

	// Online aggregation: how good is the Audit Join estimate after 10ms,
	// 50ms, 250ms?
	fmt.Println("\nAudit Join estimate quality over time:")
	aj := ds.NewAuditJoin(plan, kgexplore.AuditJoinOptions{
		Threshold: kgexplore.DefaultTippingThreshold,
		Seed:      7,
	})
	var elapsed time.Duration
	for _, budget := range []time.Duration{10, 40, 200} {
		d := budget * time.Millisecond
		rep, _ := kgexplore.Drive(context.Background(), aj, kgexplore.DriveOptions{Budget: d, Batch: 128})
		elapsed += rep.Elapsed
		snap := aj.Snapshot()
		fmt.Printf("  after %6v: %6d walks, mean abs error %.2f%%\n",
			elapsed, snap.Walks, 100*mae(snap.Estimates, exact))
	}

	fmt.Println("\ntop properties by distinct subjects (exact):")
	bars := ds.BarsOf(exact, nil)
	for i, b := range bars {
		if i == 10 {
			break
		}
		fmt.Printf("  %-28s %8.0f\n", b.Category.Value, b.Count)
	}
}

// mae is the paper's mean absolute error across the exact groups.
func mae(est, exact map[kgexplore.ID]float64) float64 {
	if len(exact) == 0 {
		return 0
	}
	var sum float64
	for g, ex := range exact {
		d := ex - est[g]
		if d < 0 {
			d = -d
		}
		if ex > 0 {
			sum += d / ex
		}
	}
	return sum / float64(len(exact))
}
