package kgexplore

import (
	"context"
	"fmt"
	"testing"

	"kgexplore/internal/baseline"
	"kgexplore/internal/core"
	"kgexplore/internal/ctj"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/sparql"
	"kgexplore/internal/testkit"
	"kgexplore/internal/wj"
)

// surfaceGraph builds a deterministic random graph whose objects are partly
// numeric literals, so FILTER arithmetic and SUM/AVG have data to chew on.
func surfaceGraph(seed int64) *rdf.Graph {
	return testkit.RandomGraph(seed, 30, 4, 20, 400)
}

// surfaceDataset wraps a test graph in a Dataset without the exploration
// schema (the engines under test do not consult it).
func surfaceDataset(g *rdf.Graph) *Dataset {
	return &Dataset{graph: g, store: testkit.BuildStore(g)}
}

// exactEngines evaluates the plan on every exact engine and checks agreement
// with the brute-force oracle.
func exactEngines(t *testing.T, g *rdf.Graph, q *query.Query, label string) map[rdf.ID]float64 {
	t.Helper()
	st := testkit.BuildStore(g)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatalf("%s: compile: %v", label, err)
	}
	want := testkit.BruteForce(g, q)
	if got := ctj.Evaluate(st, pl); !testkit.MapsEqual(got, want, 1e-9) {
		t.Errorf("%s: ctj disagrees with oracle: got %v want %v", label, got, want)
	}
	if got := lftj.Evaluate(st, pl); !testkit.MapsEqual(got, want, 1e-9) {
		t.Errorf("%s: lftj disagrees with oracle: got %v want %v", label, got, want)
	}
	if got, err := baseline.Evaluate(st, pl); err != nil {
		t.Errorf("%s: baseline: %v", label, err)
	} else if !testkit.MapsEqual(got, want, 1e-9) {
		t.Errorf("%s: baseline disagrees with oracle: got %v want %v", label, got, want)
	}
	return want
}

// estimateConverges runs the walk estimators for many steps and checks the
// totals land near the exact answer. Tolerance is statistical, so the walk
// counts are generous and the graphs small.
func estimateConverges(t *testing.T, g *rdf.Graph, q *query.Query, want map[rdf.ID]float64, label string) {
	t.Helper()
	st := testkit.BuildStore(g)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatalf("%s: compile: %v", label, err)
	}
	total := 0.0
	for _, v := range want {
		total += v
	}
	check := func(engine string, res wj.Result) {
		got := 0.0
		for _, v := range res.Estimates {
			got += v
		}
		// 25% relative + small absolute slack: generous, but the walk budget
		// is big and a biased estimator drifts far outside this band.
		tol := 0.25*total + 2
		if d := got - total; d > tol || d < -tol {
			t.Errorf("%s/%s: estimate total %.2f, exact %.2f (tolerance %.2f)", label, engine, got, total, tol)
		}
	}
	if !q.Distinct {
		// Plain Wander Join has no unbiased distinct estimator; skip it there.
		wr := wj.New(st, pl, 11)
		for i := 0; i < 60000; i++ {
			wr.Step()
		}
		check("wj", wr.Snapshot())
	}
	if q.Agg == query.AggAvg && len(want) > 1 {
		return // per-group AVG ratio comparison below is what matters; skip totals
	}
	aj := core.New(st, pl, core.Options{Threshold: 50, Seed: 13})
	for i := 0; i < 20000; i++ {
		aj.Step()
	}
	check("core", aj.Snapshot())
}

// TestFilterEquivalence: per-construct FILTER semantics agree across all
// exact engines and the estimators converge to them.
func TestFilterEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := surfaceGraph(seed)
		preds := []rdf.ID{30, 31} // p0, p1 per RandomGraph's ID layout

		// Numeric comparison on the counted variable.
		q := testkit.ChainQuery(g, preds, true, false)
		q.Filters = []query.Filter{{Op: query.CmpGt, L: query.EVar(q.Beta), R: query.ENum(5)}}
		want := exactEngines(t, g, q, fmt.Sprintf("seed%d/gt", seed))
		estimateConverges(t, g, q, want, fmt.Sprintf("seed%d/gt", seed))

		// Arithmetic over two bound variables (mid and end of the chain).
		q = testkit.ChainQuery(g, preds, false, false)
		q.Filters = []query.Filter{{
			Op: query.CmpLe,
			L:  query.EArith(query.ArithAdd, query.EVar(1), query.EVar(q.Beta)),
			R:  query.ENum(40),
		}}
		want = exactEngines(t, g, q, fmt.Sprintf("seed%d/arith", seed))
		estimateConverges(t, g, q, want, fmt.Sprintf("seed%d/arith", seed))

		// Inequality on the group variable against a term (ID comparison).
		q = testkit.ChainQuery(g, preds, true, false)
		q.Filters = []query.Filter{{Op: query.CmpNe, L: query.EVar(0), R: query.ETerm(3)}}
		want = exactEngines(t, g, q, fmt.Sprintf("seed%d/ne", seed))
		if _, hit := want[3]; hit {
			t.Errorf("seed%d/ne: filtered-out group 3 present in result", seed)
		}
		estimateConverges(t, g, q, want, fmt.Sprintf("seed%d/ne", seed))

		// DISTINCT under a filter: Audit Join's unbiased distinct estimator
		// must account for filter-rejected paths in Pr(a,b).
		q = testkit.ChainQuery(g, preds, true, true)
		q.Filters = []query.Filter{{Op: query.CmpGt, L: query.EVar(q.Beta), R: query.ENum(3)}}
		want = exactEngines(t, g, q, fmt.Sprintf("seed%d/distinct", seed))
		estimateConverges(t, g, q, want, fmt.Sprintf("seed%d/distinct", seed))

		// SUM with a filter that prunes non-numeric and small values.
		q = testkit.ChainQuery(g, preds, true, false)
		q.Agg = query.AggSum
		q.Filters = []query.Filter{{Op: query.CmpGe, L: query.EVar(q.Beta), R: query.ENum(2)}}
		want = exactEngines(t, g, q, fmt.Sprintf("seed%d/sum", seed))
		estimateConverges(t, g, q, want, fmt.Sprintf("seed%d/sum", seed))
	}
}

// TestFilterAllRejected: a filter nothing satisfies yields empty results, not
// errors, on every engine.
func TestFilterAllRejected(t *testing.T) {
	g := surfaceGraph(7)
	q := testkit.ChainQuery(g, []rdf.ID{30}, false, false)
	q.Filters = []query.Filter{{Op: query.CmpLt, L: query.EVar(q.Beta), R: query.ENum(-1e9)}}
	want := exactEngines(t, g, q, "allrejected")
	if len(want) != 0 {
		t.Fatalf("oracle found %v for an unsatisfiable filter", want)
	}
	st := testkit.BuildStore(g)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	wr := wj.New(st, pl, 3)
	for i := 0; i < 2000; i++ {
		wr.Step()
	}
	res := wr.Snapshot()
	for a, v := range res.Estimates {
		if v != 0 {
			t.Errorf("wj estimated %v for group %d under an unsatisfiable filter", v, a)
		}
	}
	if res.Rejected == 0 {
		t.Error("wj recorded no rejections under an unsatisfiable filter")
	}
}

// TestUnionEquivalence: union bag semantics (and cross-branch DISTINCT dedup)
// agree between the oracle and the exact union evaluators.
func TestUnionEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := surfaceGraph(seed)
		mk := func(p rdf.ID, distinct bool, agg query.AggFunc) *query.Query {
			q := testkit.ChainQuery(g, []rdf.ID{p, 31}, true, distinct)
			q.Agg = agg
			return q
		}
		for _, tc := range []struct {
			name     string
			distinct bool
			agg      query.AggFunc
		}{
			{"count", false, query.AggCount},
			{"distinct", true, query.AggCount},
			{"sum", false, query.AggSum},
			{"avg", false, query.AggAvg},
		} {
			u := &query.UnionQuery{Branches: []*query.Query{
				mk(30, tc.distinct, tc.agg),
				mk(32, tc.distinct, tc.agg),
			}}
			// Overlapping branches: branch 3 repeats branch 1's first
			// predicate so DISTINCT has cross-branch duplicates to collapse.
			u.Branches = append(u.Branches, mk(30, tc.distinct, tc.agg))
			if err := u.Validate(); err != nil {
				t.Fatalf("seed%d/%s: %v", seed, tc.name, err)
			}
			want := testkit.BruteForceUnion(g, u)
			d := surfaceDataset(g)
			up, err := d.CompileUnion(u)
			if err != nil {
				t.Fatalf("seed%d/%s: %v", seed, tc.name, err)
			}
			for _, eng := range []ExactEngine{EngineCTJ, EngineLFTJ, EngineBaseline} {
				got, err := d.ExactUnion(up, eng)
				if err != nil {
					t.Fatalf("seed%d/%s/%v: ExactUnion: %v", seed, tc.name, eng, err)
				}
				if !testkit.MapsEqual(got, want, 1e-9) {
					t.Errorf("seed%d/%s/%v: ExactUnion disagrees with oracle: got %v want %v",
						seed, tc.name, eng, got, want)
				}
			}
		}
	}
}

// TestUnionEstimation: the stratified union estimator converges to the exact
// union for COUNT and SUM, and refuses DISTINCT.
func TestUnionEstimation(t *testing.T) {
	g := surfaceGraph(2)
	d := surfaceDataset(g)
	mk := func(p rdf.ID, agg query.AggFunc) *query.Query {
		q := testkit.ChainQuery(g, []rdf.ID{p, 31}, false, false)
		q.Agg = agg
		return q
	}
	for _, tc := range []struct {
		name string
		agg  query.AggFunc
	}{{"count", query.AggCount}, {"sum", query.AggSum}, {"avg", query.AggAvg}} {
		u := &query.UnionQuery{Branches: []*query.Query{mk(30, tc.agg), mk(32, tc.agg)}}
		up, err := query.CompileUnion(u)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := testkit.BruteForceUnion(g, u)
		stepper, err := d.NewUnionEstimator(up, 17)
		if err != nil {
			t.Fatalf("%s: NewUnionEstimator: %v", tc.name, err)
		}
		for i := 0; i < 60000; i++ {
			stepper.Step()
		}
		res := stepper.Snapshot()
		got := res.Estimates[wj.GlobalGroup]
		exact := want[testkit.GlobalGroup]
		tol := 0.25*exact + 2
		if diff := got - exact; diff > tol || diff < -tol {
			t.Errorf("%s: union estimate %.2f, exact %.2f", tc.name, got, exact)
		}
	}

	// DISTINCT over UNION is refused.
	qd := testkit.ChainQuery(g, []rdf.ID{30, 31}, false, true)
	qd2 := testkit.ChainQuery(g, []rdf.ID{32, 31}, false, true)
	ud := &query.UnionQuery{Branches: []*query.Query{qd, qd2}}
	upd, err := query.CompileUnion(ud)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.NewUnionEstimator(upd, 1); err != query.ErrDistinctUnion {
		t.Errorf("distinct union estimator error = %v, want ErrDistinctUnion", err)
	}
}

// TestPathEquivalence: desugared fixed-length paths evaluate identically to
// the hand-written chains on every engine.
func TestPathEquivalence(t *testing.T) {
	g := surfaceGraph(4)
	// ?x0 <p0>/<p1> ?y desugars to the 2-chain over p0, p1.
	src := `SELECT ?a COUNT(?y) WHERE { ?a <p0>/<p1> ?y } GROUP BY ?a`
	p, err := sparql.Parse(src, g.Dict)
	if err != nil {
		t.Fatal(err)
	}
	chain := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false)
	want := testkit.BruteForce(g, chain)
	got := exactEngines(t, g, p.Query, "path")
	if !testkit.MapsEqual(got, want, 1e-9) {
		t.Errorf("path query disagrees with explicit chain: got %v want %v", got, want)
	}
	estimateConverges(t, g, p.Query, want, "path")
}

// TestFilterSignatureCacheSafety: plans differing only in filters must not
// share CTJ caches (their signatures must differ).
func TestFilterSignatureCacheSafety(t *testing.T) {
	g := surfaceGraph(5)
	q1 := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false)
	q2 := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false)
	q2.Filters = []query.Filter{{Op: query.CmpGt, L: query.EVar(q2.Beta), R: query.ENum(5)}}
	if q1.Signature() == q2.Signature() {
		t.Fatal("filtered and unfiltered queries share a signature")
	}
	q3 := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false)
	q3.Filters = []query.Filter{{Op: query.CmpGt, L: query.EVar(q3.Beta), R: query.ENum(6)}}
	if q2.Signature() == q3.Signature() {
		t.Fatal("filters with different constants share a signature")
	}
}

// TestBackendUnionEquivalence: the sharded and live backends evaluate unions
// (with a filtered branch) identically to the oracle, and their union
// estimators converge. Covers the acc-level stratified merge of
// shard.UnionScatter (branch × shard strata, AVG included) and the live
// walker union.
func TestBackendUnionEquivalence(t *testing.T) {
	g := surfaceGraph(6)
	d := surfaceDataset(g)
	mk := func(p rdf.ID, distinct bool, agg query.AggFunc) *query.Query {
		q := testkit.ChainQuery(g, []rdf.ID{p, 31}, true, distinct)
		q.Agg = agg
		return q
	}
	for _, tc := range []struct {
		name     string
		distinct bool
		agg      query.AggFunc
	}{
		{"count", false, query.AggCount},
		{"sum", false, query.AggSum},
		{"avg", false, query.AggAvg},
		{"distinct", true, query.AggCount},
	} {
		u := &query.UnionQuery{Branches: []*query.Query{
			mk(30, tc.distinct, tc.agg),
			mk(32, tc.distinct, tc.agg),
			mk(30, tc.distinct, tc.agg), // overlaps branch 0 for DISTINCT dedup
		}}
		// A filtered branch exercises FILTER through the union paths.
		u.Branches[1].Filters = []query.Filter{
			{Op: query.CmpGt, L: query.EVar(u.Branches[1].Beta), R: query.ENum(2)},
		}
		want := testkit.BruteForceUnion(g, u)
		up, err := query.CompileUnion(u)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		total := 0.0
		for _, v := range want {
			total += v
		}

		for _, K := range []int{2, 3} {
			sd, err := d.BuildSharded(K, "")
			if err != nil {
				t.Fatalf("%s/K%d: %v", tc.name, K, err)
			}
			got, err := sd.ExactUnionCtx(context.Background(), up)
			if err != nil {
				t.Fatalf("%s/K%d: ExactUnionCtx: %v", tc.name, K, err)
			}
			if !testkit.MapsEqual(got, want, 1e-9) {
				t.Errorf("%s/K%d: sharded exact union disagrees: got %v want %v", tc.name, K, got, want)
			}
			if tc.distinct {
				if _, err := sd.NewUnionScatter(up, ShardScatterOptions{Seed: 21}); err != query.ErrDistinctUnion {
					t.Errorf("%s/K%d: distinct NewUnionScatter error = %v, want ErrDistinctUnion", tc.name, K, err)
				}
				// RunUnionScatter must fall back to the exact cross-branch union.
				res, err := sd.RunUnionScatter(context.Background(), up, ShardScatterOptions{Seed: 21}, DriveOptions{MaxWalks: 100})
				if err != nil {
					t.Fatalf("%s/K%d: RunUnionScatter: %v", tc.name, K, err)
				}
				if !testkit.MapsEqual(res.Estimates, want, 1e-9) {
					t.Errorf("%s/K%d: distinct union fallback disagrees: got %v want %v", tc.name, K, res.Estimates, want)
				}
				continue
			}
			us, err := sd.NewUnionScatter(up, ShardScatterOptions{Seed: 21})
			if err != nil {
				t.Fatalf("%s/K%d: NewUnionScatter: %v", tc.name, K, err)
			}
			for i := 0; i < 60000; i++ {
				us.Step()
			}
			res := us.Snapshot()
			gotTotal := 0.0
			for _, v := range res.Estimates {
				gotTotal += v
			}
			tol := 0.25*total + 2
			if diff := gotTotal - total; diff > tol || diff < -tol {
				t.Errorf("%s/K%d: union scatter total %.2f, exact %.2f (tol %.2f)", tc.name, K, gotTotal, total, tol)
			}
		}

		ld, err := surfaceDataset(g).Live(LiveOptions{})
		if err != nil {
			t.Fatalf("%s: Live: %v", tc.name, err)
		}
		got, err := ld.ExactUnionCtx(context.Background(), up)
		if err != nil {
			t.Fatalf("%s: live ExactUnionCtx: %v", tc.name, err)
		}
		if !testkit.MapsEqual(got, want, 1e-9) {
			t.Errorf("%s: live exact union disagrees: got %v want %v", tc.name, got, want)
		}
		if tc.distinct {
			if _, err := ld.NewUnionEstimator(up, LiveWalkerOptions{Seed: 23}); err != query.ErrDistinctUnion {
				t.Errorf("%s: live distinct union estimator error = %v, want ErrDistinctUnion", tc.name, err)
			}
			continue
		}
		le, err := ld.NewUnionEstimator(up, LiveWalkerOptions{Threshold: -1, Seed: 23})
		if err != nil {
			t.Fatalf("%s: live NewUnionEstimator: %v", tc.name, err)
		}
		for i := 0; i < 60000; i++ {
			le.Step()
		}
		res := le.Snapshot()
		gotTotal := 0.0
		for _, v := range res.Estimates {
			gotTotal += v
		}
		tol := 0.25*total + 2
		if diff := gotTotal - total; diff > tol || diff < -tol {
			t.Errorf("%s: live union total %.2f, exact %.2f (tol %.2f)", tc.name, gotTotal, total, tol)
		}
	}
}
