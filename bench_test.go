// Benchmarks regenerating the paper's tables and figures (one benchmark per
// artifact; see DESIGN.md §4 for the experiment index) plus ablations and
// microbenchmarks of the substrates.
//
// The figure benchmarks run the experiment harness at a reduced scale so the
// suite completes on one core; `cmd/kgbench -full` runs the paper's 9s×1s
// protocol. BenchmarkSampleTime* are directly comparable to the paper's
// ~2.5µs-per-walk figure (§V-C).
package kgexplore

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"kgexplore/internal/baseline"
	"kgexplore/internal/core"
	"kgexplore/internal/ctj"
	"kgexplore/internal/experiments"
	"kgexplore/internal/explore"
	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
	"kgexplore/internal/workload"
)

// benchCfg is the reduced-scale protocol used by the figure benchmarks.
func benchCfg() experiments.Config {
	cfg := experiments.Quick()
	cfg.Scale = 0.01
	cfg.Paths = 2
	cfg.MaxSteps = 3
	cfg.Budget = 40 * time.Millisecond
	cfg.Interval = 20 * time.Millisecond
	cfg.OrderTrials = 100
	return cfg
}

// Shared fixture: a small DBpedia-sim dataset with a selective depth-3
// query, built once.
var fixture struct {
	once  sync.Once
	graph *rdf.Graph
	store *index.Store
	plan  *query.Plan // distinct, grouped, depth 3
	exact map[rdf.ID]float64
}

func loadFixture(b *testing.B) {
	fixture.once.Do(func() {
		g, schema, err := kggen.Generate(kggen.DBpediaSim(0.02))
		if err != nil {
			panic(err)
		}
		st := index.Build(g)
		// Root -> largest subclass -> popular property -> object classes.
		state := explore.Root(schema)
		subq, err := state.Query(explore.OpSubclass)
		if err != nil {
			panic(err)
		}
		pl, err := query.Compile(subq)
		if err != nil {
			panic(err)
		}
		charts := ctj.Evaluate(st, pl)
		var topC rdf.ID
		best := -1.0
		for id, n := range charts {
			if n > best || (n == best && id < topC) {
				topC, best = id, n
			}
		}
		state, err = state.Select(explore.OpSubclass, topC)
		if err != nil {
			panic(err)
		}
		// Most popular domain property.
		var topP rdf.ID
		bestN := -1
		it := st.Level(index.PSO, st.FullSpan(index.PSO), 0)
		for it.Next() {
			k := it.Key()
			if k == schema.Type || k == schema.SubClassOf || k == schema.TypeClosure {
				continue
			}
			if n := it.SubSpan().Len(); n > bestN {
				topP, bestN = k, n
			}
		}
		state, err = state.Select(explore.OpOutProp, topP)
		if err != nil {
			panic(err)
		}
		q, err := state.Query(explore.OpObject)
		if err != nil {
			panic(err)
		}
		plan, err := query.Compile(q)
		if err != nil {
			panic(err)
		}
		fixture.graph = g
		fixture.store = st
		fixture.plan = plan
		fixture.exact = ctj.Evaluate(st, plan)
	})
	if len(fixture.exact) == 0 {
		b.Fatal("fixture query has no results")
	}
}

// --- Table I ---------------------------------------------------------------

// BenchmarkTable1DatasetInfo regenerates Table I (dataset information).
func BenchmarkTable1DatasetInfo(b *testing.B) {
	loadFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info := kggen.DatasetInfo("dbpedia-sim", fixture.graph)
		if info.Triples == 0 {
			b.Fatal("empty info")
		}
	}
}

// BenchmarkDatasetGenerate measures end-to-end synthetic dataset generation
// (including closure materialization), the offline phase of Table I.
func BenchmarkDatasetGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _, err := kggen.Generate(kggen.DBpediaSim(0.01))
		if err != nil {
			b.Fatal(err)
		}
		_ = g
	}
}

// --- Figures 8-11 ----------------------------------------------------------

// BenchmarkFig8SelectedQueries regenerates Fig. 8 (six selected queries,
// exact runtimes + MAE series) at reduced scale.
func BenchmarkFig8SelectedQueries(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(io.Discard, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig9AllQueriesDistinct regenerates Fig. 9 (all queries with
// DISTINCT, Tukey stats per step).
func BenchmarkFig9AllQueriesDistinct(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		s, err := experiments.NewSuite(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cells, err := s.FigAllQueries(io.Discard, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

// BenchmarkFig10AllQueriesNoDistinct regenerates Fig. 10 (all queries,
// plain COUNT).
func BenchmarkFig10AllQueriesNoDistinct(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		s, err := experiments.NewSuite(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cells, err := s.FigAllQueries(io.Discard, false)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

// BenchmarkFig11RejectionRates regenerates Fig. 11 (per-query rejection
// rates, WJ vs AJ).
func BenchmarkFig11RejectionRates(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		s, err := experiments.NewSuite(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := s.Fig11(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// --- §V-C sample times (S1) ------------------------------------------------

// BenchmarkSampleTimeWJ measures one Wander Join walk; ns/op is the paper's
// per-sample time (~2.5µs on their hardware).
func BenchmarkSampleTimeWJ(b *testing.B) {
	loadFixture(b)
	r := wj.New(fixture.store, fixture.plan, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step()
	}
}

// BenchmarkSampleTimeAJ measures one Audit Join walk including tipping-point
// checks, partial exact computations and the cached Pr(a,b) lookups.
func BenchmarkSampleTimeAJ(b *testing.B) {
	loadFixture(b)
	r := core.New(fixture.store, fixture.plan, core.Options{Threshold: core.DefaultThreshold, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step()
	}
}

// BenchmarkSampleTimeWJAlloc measures the steady-state allocation profile of
// a Wander Join walk: the runner is warmed first so one-time growth (the
// accumulator maps, the distinct dedup set) is excluded and allocs/op must
// read 0 — the walk loop itself allocates nothing.
func BenchmarkSampleTimeWJAlloc(b *testing.B) {
	loadFixture(b)
	r := wj.New(fixture.store, fixture.plan, 1)
	for i := 0; i < 20_000; i++ {
		r.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step()
	}
}

// BenchmarkSampleTimeAJAlloc is the Audit Join counterpart: warmed past the
// CTJ cache build-up so allocs/op reflects only the recurring walk work.
func BenchmarkSampleTimeAJAlloc(b *testing.B) {
	loadFixture(b)
	r := core.New(fixture.store, fixture.plan, core.Options{Threshold: core.DefaultThreshold, Seed: 1})
	for i := 0; i < 20_000; i++ {
		r.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step()
	}
}

// --- Ablations -------------------------------------------------------------

// pathCountPlan builds a 3-hop path-counting query over the most popular
// property: ?a p ?b . ?b p ?c . ?c p ?d, COUNT(?d). The Zipfian object hubs
// make many prefixes reconverge on the same join values — the regime of
// Example IV.1, where LFTJ recomputes each shared suffix and CTJ serves it
// from the cache.
func pathCountPlan(b *testing.B) *query.Plan {
	loadFixture(b)
	st := fixture.store
	var topP rdf.ID
	bestN := -1
	it := st.Level(index.PSO, st.FullSpan(index.PSO), 0)
	for it.Next() {
		k := it.Key()
		if term := fixture.graph.Dict.Term(k); len(term.Value) > 2 && term.Value[:2] == "p:" {
			if n := it.SubSpan().Len(); n > bestN {
				topP, bestN = k, n
			}
		}
	}
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(topP), O: query.V(1)},
			{S: query.V(1), P: query.C(topP), O: query.V(2)},
			{S: query.V(2), P: query.C(topP), O: query.V(3)},
		},
		Alpha: query.NoVar,
		Beta:  3,
	}
	pl, err := query.Compile(q)
	if err != nil {
		b.Fatal(err)
	}
	return pl
}

// BenchmarkAblationCTJvsLFTJ compares the exact engines on a hub-heavy path
// count (Example IV.1: CTJ's cache removes LFTJ's suffix recomputation)
// plus the baseline hash-join engine.
func BenchmarkAblationCTJvsLFTJ(b *testing.B) {
	pl := pathCountPlan(b)
	want := lftj.Count(fixture.store, pl)
	b.Run("LFTJ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := lftj.Count(fixture.store, pl); got != want {
				b.Fatalf("count %d != %d", got, want)
			}
		}
	})
	b.Run("CTJ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := ctj.Count(fixture.store, pl); got != want {
				b.Fatalf("count %d != %d", got, want)
			}
		}
	})
	b.Run("Baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := baseline.Evaluate(fixture.store, pl)
			if err != nil {
				b.Fatal(err)
			}
			if int64(res[baseline.GlobalGroup]) != want {
				b.Fatalf("count %v != %d", res[baseline.GlobalGroup], want)
			}
		}
	})
}

// BenchmarkAblationTippingPoint sweeps Audit Join's tipping threshold
// (DESIGN.md §4 A2): -1 never tips (pure walks with the unbiased distinct
// estimator), +Inf tips at the first step. Each run reports the MAE reached
// after a fixed walk budget as the "mae" metric alongside the usual ns/op.
func BenchmarkAblationTippingPoint(b *testing.B) {
	loadFixture(b)
	thresholds := []struct {
		name string
		v    float64
	}{
		{"never", -1},
		{"t1", 1},
		{"t10", 10},
		{"t1000", 1000},
		{"always", math.Inf(1)},
	}
	const walks = 5000
	for _, th := range thresholds {
		b.Run(th.name, func(b *testing.B) {
			var mae float64
			for i := 0; i < b.N; i++ {
				r := core.New(fixture.store, fixture.plan, core.Options{Threshold: th.v, Seed: 7})
				RunWalks(r, walks)
				mae = stats.MAE(r.Snapshot().Estimates, fixture.exact)
			}
			b.ReportMetric(mae, "mae")
			b.ReportMetric(float64(walks), "walks/op")
		})
	}
}

// BenchmarkAblationTippingOracle compares the paper's statistics-based
// tipping oracle against the probe-walk oracle (the "more sophisticated
// estimates" future-work direction), reporting the MAE after a fixed walk
// budget alongside the cost.
func BenchmarkAblationTippingOracle(b *testing.B) {
	loadFixture(b)
	const walks = 5000
	oracles := []struct {
		name string
		mk   func() core.Options
	}{
		{"stats", func() core.Options {
			return core.Options{Threshold: core.DefaultThreshold, Seed: 7}
		}},
		{"probe4", func() core.Options {
			return core.Options{
				Threshold: core.DefaultThreshold, Seed: 7,
				Oracle: core.NewProbeOracle(fixture.store, fixture.plan, 4, 7),
			}
		}},
	}
	for _, o := range oracles {
		b.Run(o.name, func(b *testing.B) {
			var mae float64
			for i := 0; i < b.N; i++ {
				r := core.New(fixture.store, fixture.plan, o.mk())
				RunWalks(r, walks)
				mae = stats.MAE(r.Snapshot().Estimates, fixture.exact)
			}
			b.ReportMetric(mae, "mae")
		})
	}
}

// --- Substrate microbenchmarks ----------------------------------------------

// BenchmarkClosureMaterialize measures the offline preprocessing step.
func BenchmarkClosureMaterialize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, _, err := kggen.Generate(kggen.DBpediaSim(0.01))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		explore.MaterializeClosure(g, rdf.OWLThing)
	}
}

// BenchmarkWorkloadGeneration measures the §V-B random-exploration
// generator including its exact ground-truth evaluations.
func BenchmarkWorkloadGeneration(b *testing.B) {
	loadFixture(b)
	schema, err := explore.SchemaOf(fixture.graph.Dict, rdf.OWLThing)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := &workload.Generator{Store: fixture.store, Schema: schema, Seed: int64(i), MaxSteps: 3}
		if recs := gen.Paths(2); len(recs) == 0 {
			b.Fatal("no workload")
		}
	}
}

// BenchmarkSnapshotIO measures binary snapshot write+read round trips.
func BenchmarkSnapshotIO(b *testing.B) {
	loadFixture(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := rdf.WriteBinary(&buf, fixture.graph); err != nil {
			b.Fatal(err)
		}
		if _, err := rdf.ReadBinary(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkIndexBuild measures building the four trie orders (radix-sorted,
// one goroutine per order).
func BenchmarkIndexBuild(b *testing.B) {
	loadFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		index.Build(fixture.graph)
	}
}

var benchSpanSink int

// BenchmarkSpanL1 measures the dense direct-indexed level-1 span lookup.
func BenchmarkSpanL1(b *testing.B) {
	loadFixture(b)
	st := fixture.store
	nd := rdf.ID(fixture.graph.Dict.Len())
	b.ReportAllocs()
	b.ResetTimer()
	acc := 0
	for i := 0; i < b.N; i++ {
		acc += st.SpanL1(index.SPO, rdf.ID(i)%nd).Len()
	}
	benchSpanSink = acc
}

// BenchmarkSpanL2 measures the packed-key level-2 hash span lookup.
func BenchmarkSpanL2(b *testing.B) {
	loadFixture(b)
	st := fixture.store
	nd := rdf.ID(fixture.graph.Dict.Len())
	b.ReportAllocs()
	b.ResetTimer()
	acc := 0
	for i := 0; i < b.N; i++ {
		acc += st.SpanL2(index.PSO, rdf.ID(i)%nd, rdf.ID(i*7)%nd).Len()
	}
	benchSpanSink = acc
}

// BenchmarkTrieSeek measures LFTJ-style leapfrog seeks across a level.
func BenchmarkTrieSeek(b *testing.B) {
	loadFixture(b)
	st := fixture.store
	sp := st.FullSpan(index.SPO)
	// Gather subject keys once.
	var keys []rdf.ID
	it := st.Level(index.SPO, sp, 0)
	for it.Next() {
		keys = append(keys, it.Key())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		it := st.Level(index.SPO, sp, 0)
		if !it.Seek(k) || it.Key() != k {
			b.Fatal("seek failed")
		}
	}
}

// BenchmarkUniformSample measures O(1) span sampling (the walk primitive).
func BenchmarkUniformSample(b *testing.B) {
	loadFixture(b)
	st := fixture.store
	sp := st.FullSpan(index.PSO)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Sample(index.PSO, sp, rng)
	}
}

// BenchmarkPathProb measures the cached Pr(b) computation of the distinct
// estimator (first call per b computes, later calls hit the cache; the mix
// here reflects steady-state AJ behaviour).
func BenchmarkPathProb(b *testing.B) {
	loadFixture(b)
	e := ctj.New(fixture.store, fixture.plan)
	var betas []rdf.ID
	lftj.Enumerate(fixture.store, fixture.plan, func(bind query.Bindings) bool {
		betas = append(betas, bind[fixture.plan.Query.Beta])
		return len(betas) < 512
	})
	if len(betas) == 0 {
		b.Skip("no results")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.PathProbB(betas[i%len(betas)])
	}
}
