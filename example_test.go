package kgexplore_test

import (
	"fmt"
	"strings"

	"kgexplore"
)

const exampleData = `<alice> <worksAt> <acme> .
<bob> <worksAt> <acme> .
<carol> <worksAt> <globex> .
<alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Person> .
<bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Person> .
<carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Person> .
<acme> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Company> .
<globex> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Company> .
`

// Loading a dataset and answering a grouped count-distinct exactly.
func ExampleDataset_Exact() {
	ds, err := kgexplore.LoadNTriples(strings.NewReader(exampleData))
	if err != nil {
		panic(err)
	}
	parsed, err := ds.ParseQuery(`
		SELECT ?c COUNT(DISTINCT ?org) WHERE {
			?p <worksAt> ?org .
			?org a ?c .
		} GROUP BY ?c`)
	if err != nil {
		panic(err)
	}
	plan, err := ds.Compile(parsed.Query)
	if err != nil {
		panic(err)
	}
	exact, err := ds.Exact(plan, kgexplore.EngineCTJ)
	if err != nil {
		panic(err)
	}
	for _, bar := range ds.BarsOf(exact, nil) {
		fmt.Printf("%s: %g\n", bar.Category.Value, bar.Count)
	}
	// Output:
	// Company: 2
}

// Online aggregation with Audit Join: the estimate converges to the exact
// distinct count.
func ExampleDataset_NewAuditJoin() {
	ds, err := kgexplore.LoadNTriples(strings.NewReader(exampleData))
	if err != nil {
		panic(err)
	}
	parsed, err := ds.ParseQuery(
		`SELECT COUNT(DISTINCT ?org) WHERE { ?p <worksAt> ?org . ?p a <Person> }`)
	if err != nil {
		panic(err)
	}
	plan, err := ds.Compile(parsed.Query)
	if err != nil {
		panic(err)
	}
	aj := ds.NewAuditJoin(plan, kgexplore.AuditJoinOptions{
		Threshold: kgexplore.DefaultTippingThreshold,
		Seed:      1,
	})
	kgexplore.RunWalks(aj, 10000)
	fmt.Printf("%.1f\n", aj.Snapshot().Estimates[kgexplore.GlobalGroup])
	// Output:
	// 2.0
}

// Exploring with the bar-chart model of the paper's §III.
func ExampleDataset_Chart() {
	ds, err := kgexplore.LoadNTriples(strings.NewReader(exampleData))
	if err != nil {
		panic(err)
	}
	bars, err := ds.Chart(ds.Root(), kgexplore.OpSubclass)
	if err != nil {
		panic(err)
	}
	for _, b := range bars {
		fmt.Printf("%s: %g\n", b.Category.Value, b.Count)
	}
	// Output:
	// Person: 3
	// Company: 2
}
