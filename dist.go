package kgexplore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"kgexplore/internal/card"
	"kgexplore/internal/dist"
	"kgexplore/internal/explore"
	"kgexplore/internal/query"
	"kgexplore/internal/shard"
	"kgexplore/internal/snap"
	"kgexplore/internal/sparql"
	"kgexplore/internal/wj"
)

// Re-exported distributed scatter-gather types (internal/dist).
type (
	// DistRunOptions configure one distributed scatter-gather run.
	DistRunOptions = dist.RunOptions
	// DistRunStats extends the scatter statistics with distribution
	// telemetry: which worker served each stratum, retries, wire bytes.
	DistRunStats = dist.RunStats
	// DistRetryRecord documents one stratum re-allocation after worker loss.
	DistRetryRecord = dist.RetryRecord
	// DistWorkerHealth is one fleet member's health snapshot.
	DistWorkerHealth = dist.WorkerHealth
	// DistWorkerStats is a worker's self-reported statistics.
	DistWorkerStats = dist.WorkerStats
)

// DistDataset is the distributed counterpart of ShardedDataset: the shards
// live in kgworker processes reached over the wire, and online aggregation
// runs as coordinator-driven scatter-gather with stratified budget
// allocation, progressive merged snapshots, and stratum re-allocation on
// worker loss. Exploration (parsing, compiling, charts) runs locally against
// the shared dictionary, loaded once from the first shard's snapshot —
// every shard of a set carries the full dictionary.
//
// Like its in-process siblings, a DistDataset is safe for concurrent
// readers once constructed; Close releases the local dictionary mapping
// (the workers own their stores).
type DistDataset struct {
	co     *dist.Coordinator
	dict   *Dict
	schema explore.Schema
	local  *snap.Loaded

	manifest   ShardManifest
	triples    int
	indexBytes int64
	// estimator is the cardinality estimator name sent to workers with
	// every run ("" = span statistics); workers construct it over their own
	// stores.
	estimator string
}

// DialDistDataset connects a coordinator to a kgworker fleet serving the
// shard set described by manifestPath. workers lists the fleet addresses;
// nil falls back to the manifest's recorded placement (kgsnap shard
// -workers). The manifest must be readable locally — the shared dictionary
// is loaded from the first shard's snapshot — and the fleet must agree with
// it on shard count and dictionary length.
func DialDistDataset(ctx context.Context, manifestPath string, workers []string) (*DistDataset, error) {
	m, err := shard.ReadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	if workers == nil {
		workers = m.Workers
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("kgexplore: no worker addresses given and manifest %s records none", manifestPath)
	}
	co, err := dist.Dial(ctx, workers)
	if err != nil {
		return nil, err
	}
	d, err := newDistLocal(co, manifestPath, m)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// newDistLocal builds the local half of a DistDataset — dictionary, schema,
// manifest bookkeeping — over an already-dialed coordinator.
func newDistLocal(co *dist.Coordinator, manifestPath string, m ShardManifest) (*DistDataset, error) {
	if co.K() != m.Shards {
		return nil, fmt.Errorf("kgexplore: fleet serves %d shards, manifest %s describes %d", co.K(), manifestPath, m.Shards)
	}
	dir := filepath.Dir(manifestPath)
	l, err := snap.LoadFile(filepath.Join(dir, m.Files[0].Path), snap.Options{Mode: snap.ModeAuto})
	if err != nil {
		return nil, fmt.Errorf("kgexplore: loading shared dictionary from shard 0: %w", err)
	}
	dict := l.Store.Dict()
	if dict.Len() != co.DictLen() {
		l.Close()
		return nil, fmt.Errorf("kgexplore: local dictionary has %d terms, fleet reports %d — manifest and fleet serve different sets",
			dict.Len(), co.DictLen())
	}
	schema, err := explore.SchemaOf(dict, RootThing)
	if err != nil {
		l.Close()
		return nil, err
	}
	d := &DistDataset{co: co, dict: dict, schema: schema, local: l, manifest: m}
	for _, f := range m.Files {
		d.triples += f.Triples
		if fi, err := os.Stat(filepath.Join(dir, f.Path)); err == nil {
			d.indexBytes += fi.Size()
		}
	}
	return d, nil
}

// Close releases the local dictionary mapping. The workers' stores are
// theirs to close.
func (d *DistDataset) Close() error { return d.local.Close() }

// NumShards returns the fleet's shard count K.
func (d *DistDataset) NumShards() int { return d.co.K() }

// NumTriples returns the total triple count across shards, per the manifest.
func (d *DistDataset) NumTriples() int { return d.triples }

// IndexBytes reports the on-disk size of the shard snapshots the fleet
// serves (the local stat of the manifest's files; 0 for files not present
// on this machine).
func (d *DistDataset) IndexBytes() int64 { return d.indexBytes }

// Workers returns the fleet's worker addresses.
func (d *DistDataset) Workers() []string { return d.co.Workers() }

// Dict returns the shared term dictionary.
func (d *DistDataset) Dict() *Dict { return d.dict }

// Root returns the initial exploration state: the root class bar.
func (d *DistDataset) Root() *ExploreState { return explore.Root(d.schema) }

// ParseQuery parses a query in the SPARQL fragment of Fig. 4. Constants are
// interned into the shared dictionary, which the fleet's workers share by
// construction — interning can only find existing terms or append new ones
// that no worker-side plan will ever resolve, so it stays coherent.
func (d *DistDataset) ParseQuery(src string) (*ParsedQuery, error) {
	return sparql.Parse(src, d.dict)
}

// Compile plans a query for execution (the same planner the workers run;
// the plan's Query travels over the wire and is re-planned worker-side).
func (d *DistDataset) Compile(q *Query) (*Plan, error) { return query.Compile(q) }

// BarsOf converts a per-group result (and optional CI map) into bars sorted
// by descending count, decoding group IDs through the shared dictionary.
func (d *DistDataset) BarsOf(counts map[ID]float64, ci map[ID]float64) []Bar {
	return barsOf(d.dict, counts, ci)
}

// UseEstimator switches the fleet's tipping and budget decisions to the
// named cardinality estimator. The name is validated locally and sent with
// every run; each worker constructs the estimator over its own stores.
func (d *DistDataset) UseEstimator(name string) error {
	if _, err := card.ByName(name, d.local.Store); err != nil {
		return err
	}
	d.estimator = name
	return nil
}

// EstimatorName reports which cardinality estimator the fleet's runs use.
func (d *DistDataset) EstimatorName() string {
	if d.estimator != "" {
		return d.estimator
	}
	return EstimatorSpan
}

// RunDist executes one distributed scatter-gather Audit Join over the
// fleet, with shard.RunScatter's contract: xopts.MaxWalks is the total walk
// budget split across strata proportionally to root cardinality,
// progressive snapshots merge all strata through xopts.OnSnapshot, and the
// final CIs merge with stratified variance. On worker loss the lost stratum
// re-runs on a survivor (see DistRunStats.Reallocations).
func (d *DistDataset) RunDist(ctx context.Context, pl *Plan, opts DistRunOptions, xopts DriveOptions) (EstimateResult, DistRunStats, error) {
	if opts.Estimator == "" {
		opts.Estimator = d.estimator
	}
	return d.co.Run(ctx, pl.Query, opts, xopts)
}

// CompileUnion validates and plans every branch of a union.
func (d *DistDataset) CompileUnion(u *UnionQuery) (*UnionPlan, error) {
	return query.CompileUnion(u)
}

// ExactUnionCtx evaluates a union exactly on one worker, which shares the
// DISTINCT dedup set and AVG numerator/denominator across branches against
// its hybrid-resolver view of the whole set. Retries on worker loss.
func (d *DistDataset) ExactUnionCtx(ctx context.Context, up *UnionPlan) (map[ID]float64, error) {
	return d.co.ExactUnion(ctx, up.Query, 0)
}

// RunUnionDist estimates a union over the fleet: each branch runs as its own
// distributed scatter-gather with an equal share of the walk and wall-clock
// budget, and the finished branch results merge additively — estimates sum,
// CIs in quadrature (wj.MergeUnion). That merge is sound only for additive
// aggregates, so AVG and COUNT(DISTINCT) unions route to the worker-side
// exact union instead (reported via the returned stats' ExactFallback).
// xopts.OnSnapshot fires per branch run and therefore sees partial-union
// snapshots; pass nil unless branch-level progress is wanted.
func (d *DistDataset) RunUnionDist(ctx context.Context, up *UnionPlan, opts DistRunOptions, xopts DriveOptions) (EstimateResult, []DistRunStats, error) {
	q := up.Query
	if q.Agg() == query.AggAvg || q.Distinct() {
		counts, err := d.co.ExactUnion(ctx, q, xopts.Budget)
		if err != nil {
			return EstimateResult{}, nil, err
		}
		st := DistRunStats{}
		st.ExactFallback = true
		return EstimateResult{Estimates: counts, CI: map[ID]float64{}}, []DistRunStats{st}, nil
	}
	n := len(up.Plans)
	bopts := xopts
	if xopts.MaxWalks > 0 {
		bopts.MaxWalks = (xopts.MaxWalks + int64(n) - 1) / int64(n)
	}
	if xopts.Budget > 0 {
		bopts.Budget = xopts.Budget / time.Duration(n)
	}
	results := make([]wj.Result, 0, n)
	stats := make([]DistRunStats, 0, n)
	for i, pl := range up.Plans {
		ropts := opts
		if opts.Estimator == "" {
			ropts.Estimator = d.estimator
		}
		ropts.Seed = opts.Seed + int64(i)*1_000_003
		res, st, err := d.co.Run(ctx, pl.Query, ropts, bopts)
		if err != nil {
			return EstimateResult{}, stats, err
		}
		results = append(results, res)
		stats = append(stats, st)
	}
	return wj.MergeUnion(results, 0), stats, nil
}

// ExactCtx evaluates the plan exactly on one worker (replicate workers hold
// the whole set; own-placement workers reach peers through their hybrid
// resolver), retrying on worker loss, with cooperative cancellation.
func (d *DistDataset) ExactCtx(ctx context.Context, pl *Plan) (map[ID]float64, error) {
	return d.co.Exact(ctx, pl.Query, 0)
}

// Health polls every worker's stats in parallel. A worker previously marked
// down that answers rejoins the coordinator's live pool.
func (d *DistDataset) Health(ctx context.Context) []DistWorkerHealth {
	return d.co.Health(ctx)
}

// Retries returns the fleet-lifetime count of stratum re-allocations after
// worker loss.
func (d *DistDataset) Retries() int64 { return d.co.Retries() }

// TotalRuns returns the fleet-lifetime distributed run count.
func (d *DistDataset) TotalRuns() int64 { return d.co.TotalRuns() }

// SwapAll hot-swaps the whole fleet to a new manifest with epoch
// coordination — every worker prepares the new set, the swap aborts
// all-or-nothing if any preparation fails or the prepared epochs disagree,
// then all commit and drain their old epochs. The manifest path must be
// valid on every worker's filesystem and locally (the shared dictionary is
// reloaded from the new set's first shard).
//
// On success it returns a NEW DistDataset over the same coordinator; the
// old one keeps answering dictionary lookups for in-flight requests and
// must be Closed once they drain. If the fleet commits but the local
// reload fails, the error is returned and the old DistDataset is stale —
// its dictionary no longer matches the fleet — so the caller should retry
// the local load or stop serving.
func (d *DistDataset) SwapAll(ctx context.Context, manifestPath string, mmap bool) (*DistDataset, error) {
	m, err := shard.ReadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	if err := d.co.SwapAll(ctx, manifestPath, mmap); err != nil {
		return nil, err
	}
	nd, err := newDistLocal(d.co, manifestPath, m)
	if err != nil {
		return nil, fmt.Errorf("kgexplore: fleet swapped but the local reload failed (old dictionary is stale): %w", err)
	}
	nd.estimator = d.estimator
	return nd, nil
}
