// Package kgexplore is a library for interactive exploration of RDF
// knowledge graphs via online aggregation, reproducing "Exploration of
// Knowledge Graphs via Online Aggregation" (Kalinsky, Hogan, Mishali,
// Etsion, Kimelfeld; ICDE 2022).
//
// The package exposes:
//
//   - Dataset: an in-memory RDF graph with the four trie index orders and
//     the materialized subclass closure the paper's engines assume;
//   - the exploration model of §III (bar charts, five expansions) through
//     Dataset.Root and Chart;
//   - four query-evaluation strategies for the exploration fragment:
//     the exact Baseline (pairwise hash joins, the paper's Virtuoso stand-
//     in), LFTJ and CTJ (worst-case-optimal trie joins, without and with
//     caching), and the online-aggregation estimators WanderJoin and
//     AuditJoin — the latter being the paper's contribution;
//   - a parser for the SPARQL fragment of Fig. 4 (Dataset.ParseQuery).
//
// Internal building blocks are re-exported here via type aliases so that
// the public API is usable without importing internal packages.
package kgexplore

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"kgexplore/internal/baseline"
	"kgexplore/internal/card"
	"kgexplore/internal/core"
	"kgexplore/internal/ctj"
	"kgexplore/internal/exec"
	"kgexplore/internal/explore"
	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/snap"
	"kgexplore/internal/sparql"
	"kgexplore/internal/wj"
)

// Re-exported data-model types.
type (
	// Term is a decoded RDF term (IRI, literal or blank node).
	Term = rdf.Term
	// ID is a dictionary-encoded term identifier.
	ID = rdf.ID
	// Graph is a dictionary plus encoded triples, the pre-index form.
	Graph = rdf.Graph
	// Dict maps terms to dense IDs and back.
	Dict = rdf.Dict
)

// Re-exported query types.
type (
	// Query is an exploration query (Fig. 4 of the paper).
	Query = query.Query
	// Plan is a compiled query with per-step access paths.
	Plan = query.Plan
	// Var is a query variable index.
	Var = query.Var
	// Pattern is one triple pattern.
	Pattern = query.Pattern
	// Filter is one FILTER constraint of a query (comparison over variables,
	// numeric constants and terms, with bound-variable arithmetic).
	Filter = query.Filter
	// UnionQuery is a UNION of exploration queries sharing one SELECT clause.
	UnionQuery = query.UnionQuery
	// UnionPlan is a compiled union: one Plan per branch.
	UnionPlan = query.UnionPlan
	// ParsedQuery is a parsed SPARQL fragment with its variable names. Its
	// Branches field carries every UNION branch (one entry for plain
	// queries); IsUnion and Union expose the multi-branch view.
	ParsedQuery = sparql.Parsed
)

// ErrDistinctUnion reports a COUNT(DISTINCT) union handed to an online
// estimator; callers route those to the exact path (ExactUnion).
var ErrDistinctUnion = query.ErrDistinctUnion

// Re-exported exploration types.
type (
	// ExploreState is a selected bar in an exploration session.
	ExploreState = explore.State
	// ExploreOp is one of the five bar expansions.
	ExploreOp = explore.Op
	// BarKind is the kind of a bar/chart.
	BarKind = explore.BarKind
)

// Exploration ops and bar kinds (Fig. 3).
const (
	OpSubclass = explore.OpSubclass
	OpOutProp  = explore.OpOutProp
	OpInProp   = explore.OpInProp
	OpObject   = explore.OpObject
	OpSubject  = explore.OpSubject

	ClassBar   = explore.ClassBar
	OutPropBar = explore.OutPropBar
	InPropBar  = explore.InPropBar
)

// Re-exported engine types.
type (
	// WanderJoin runs Wander Join online aggregation.
	WanderJoin = wj.Runner
	// AuditJoin runs the paper's Audit Join online aggregation.
	AuditJoin = core.Runner
	// AuditJoinOptions configures AuditJoin (tipping threshold, seed, shared
	// cache).
	AuditJoinOptions = core.Options
	// EstimateResult is a snapshot of an online aggregation.
	EstimateResult = wj.Result
	// CTJCacheStats reports CTJ cache effectiveness (hits and misses per
	// cache kind); AuditJoin.CacheStats returns one per runner and
	// SharedCTJCache.Stats the merged view.
	CTJCacheStats = ctj.CacheStats
	// SharedCTJCache is a concurrency-safe CTJ cache (lock-striped, with
	// per-key single-flight) shared by several AuditJoin runners over plans
	// with the same Signature: parallel workers of one run, or successive
	// requests for the same exploration query.
	SharedCTJCache = ctj.SharedCache
	// AuditJoinParallelStats reports per-worker and merged shared-cache
	// statistics of a RunAuditJoinParallel call.
	AuditJoinParallelStats = core.ParallelStats
	// CardEstimator is the unified cardinality-estimation interface
	// (internal/card): every planning, tipping and budget decision routes
	// through one of its implementations.
	CardEstimator = card.Estimator
	// TipDiagnostics aggregates estimate-vs-actual observations at Audit
	// Join tipping points.
	TipDiagnostics = core.TipDiag
	// StratifiedAuditJoin runs semantic-aware stratified Audit Join: walk
	// roots stratified by characteristic-set bucket with Neyman-allocated
	// walk budgets (see internal/core.Stratified).
	StratifiedAuditJoin = core.Stratified
	// StratifiedAuditJoinOptions configures StratifiedAuditJoin.
	StratifiedAuditJoinOptions = core.StratifiedOptions
	// StratifiedRunStats reports a stratified run's shape: strata count,
	// fallback reason, reallocation count and per-stratum telemetry.
	StratifiedRunStats = core.StratifiedStats
)

// Estimator names accepted by UseEstimator and the -estimator flags.
const (
	// EstimatorSpan is the default: exact span statistics composed under
	// per-join-variable independence.
	EstimatorSpan = card.EstimatorSpan
	// EstimatorSummary is the typed graph summary: conditional fan-outs
	// between characteristic-set buckets where the query shape allows.
	EstimatorSummary = card.EstimatorSummary
)

// EstimatorByName constructs a named cardinality estimator over the
// dataset's store ("" selects the default span statistics).
func (d *Dataset) EstimatorByName(name string) (CardEstimator, error) {
	return card.ByName(name, d.store)
}

// UseEstimator switches the dataset's planning, tipping and auto-mode
// decisions to the named cardinality estimator. Call it during setup, before
// the dataset is shared across goroutines.
func (d *Dataset) UseEstimator(name string) error {
	est, err := card.ByName(name, d.store)
	if err != nil {
		return err
	}
	d.est = est
	return nil
}

// EstimatorName reports which cardinality estimator the dataset uses.
func (d *Dataset) EstimatorName() string { return d.estimator().Name() }

// estimator returns the configured estimator, defaulting to span statistics
// (constructed fresh — SpanStats is stateless, so this never races).
func (d *Dataset) estimator() CardEstimator {
	if d.est != nil {
		return d.est
	}
	return card.NewSpanStats(d.store)
}

// NewSharedCTJCache returns an empty shared CTJ cache; pass it via
// AuditJoinOptions.Shared to warm-start runners across calls.
func NewSharedCTJCache() *SharedCTJCache { return ctj.NewSharedCache() }

// RunAuditJoinParallel runs Audit Join with the given number of parallel
// workers over one shared CTJ cache (see core.RunParallel): walks divide
// across cores while cached suffix aggregates and path probabilities are
// computed once per run, not once per worker.
func (d *Dataset) RunAuditJoinParallel(ctx context.Context, pl *Plan, opts AuditJoinOptions, workers int, xopts DriveOptions) (EstimateResult, AuditJoinParallelStats, error) {
	if opts.Estimator == nil {
		opts.Estimator = d.est
	}
	return core.RunParallelStats(ctx, d.store, pl, opts, workers, xopts)
}

// Re-exported streaming-execution types (internal/exec): both WanderJoin and
// AuditJoin are Steppers, and Drive is the single driving loop behind every
// budgeted run.
type (
	// Stepper is the unit of online estimation: one walk per Step.
	Stepper = exec.Stepper
	// DriveOptions configures one Drive call (budget, snapshot interval,
	// walk cap, batch size, streaming callback).
	DriveOptions = exec.Options
	// DriveProgress is one streamed snapshot of a running drive.
	DriveProgress = exec.Progress
	// DriveReport summarizes a completed (or cancelled) drive.
	DriveReport = exec.Report
)

// Drive runs an online estimator under the given options, honoring ctx:
// cancelling the context stops the run between walk batches and still
// returns a consistent report. See DriveOptions for budgets, walk caps and
// streaming snapshots.
func Drive(ctx context.Context, s Stepper, opts DriveOptions) (DriveReport, error) {
	return exec.Drive(ctx, s, opts)
}

// RunWalks performs exactly n walks on an estimator — the bounded-count
// companion of Drive for warmup and deterministic runs.
func RunWalks(s Stepper, n int) {
	exec.RunN(s, n)
}

// GlobalGroup is the group key of ungrouped results.
const GlobalGroup = rdf.NoID

// DefaultTippingThreshold is Audit Join's default tipping point.
const DefaultTippingThreshold = core.DefaultThreshold

// NoVar marks the absence of a variable (e.g. Query.Alpha on ungrouped
// queries).
const NoVar = query.NoVar

// NewGraph returns an empty graph for programmatic construction.
func NewGraph() *Graph { return rdf.NewGraph() }

// ReadNTriples parses an N-Triples stream into a graph.
func ReadNTriples(r io.Reader) (*Graph, error) { return rdf.ReadNTriples(r) }

// WriteNTriples serializes a graph as N-Triples.
func WriteNTriples(w io.Writer, g *Graph) error { return rdf.WriteNTriples(w, g) }

// ReadTurtle parses a Turtle stream (the practical subset documented in the
// rdf package) into a graph.
func ReadTurtle(r io.Reader) (*Graph, error) { return rdf.ReadTurtle(r) }

// LoadTurtle reads a Turtle stream and prepares a dataset rooted at
// owl:Thing.
func LoadTurtle(r io.Reader) (*Dataset, error) {
	g, err := rdf.ReadTurtle(r)
	if err != nil {
		return nil, err
	}
	return FromGraph(g, RootThing)
}

// WriteSnapshot writes the dataset's graph (including derived closure
// triples) in the compact binary snapshot format; LoadSnapshot restores it
// much faster than re-parsing N-Triples.
func (d *Dataset) WriteSnapshot(w io.Writer) error { return rdf.WriteBinary(w, d.graph) }

// LoadSnapshot reads a binary snapshot written by WriteSnapshot and prepares
// the dataset (re-materializing the closure is a no-op on snapshots that
// already contain it).
func LoadSnapshot(r io.Reader) (*Dataset, error) {
	g, err := rdf.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	return FromGraph(g, RootThing)
}

// FromStore prepares a dataset from an already-built index store — the
// snapshot-load path, where re-running Build would defeat the point. The
// store must contain the materialized subclass closure (stores built through
// FromGraph or written by kgsnap do). The dataset's graph view aliases the
// store's SPO order, which is exactly the deduplicated (S,P,O)-sorted triple
// set.
func FromStore(st *index.Store, rootIRI string) (*Dataset, error) {
	schema, err := explore.SchemaOf(st.Dict(), rootIRI)
	if err != nil {
		return nil, err
	}
	g := &rdf.Graph{Dict: st.Dict(), Triples: st.Triples(index.SPO)}
	return &Dataset{graph: g, store: st, schema: schema}, nil
}

// StoreSnapshot is a dataset loaded from a store snapshot (see
// internal/snap): the prepared dataset plus the resources backing it. For
// mmap loads the index arrays alias the mapping, so the dataset must not be
// used after Close; Close on copy loads is a no-op.
type StoreSnapshot struct {
	Dataset *Dataset
	// Mmap reports whether the load was zero-copy over a live mapping.
	Mmap bool
	// Source is the provenance string recorded when the snapshot was
	// written.
	Source string
	loaded *snap.Loaded
}

// Close releases the snapshot's mapping, if any. Every reader of the
// dataset must be drained first.
func (s *StoreSnapshot) Close() error { return s.loaded.Close() }

// WriteStoreSnapshotFile writes the dataset's fully built index store as a
// store snapshot (atomic temp-file-and-rename): dictionary, the four sorted
// orders, span levels, statistics and the numeric cache. Loading it skips
// index.Build entirely, unlike the graph-level WriteSnapshot.
func (d *Dataset) WriteStoreSnapshotFile(path, source string) error {
	return d.WriteStoreSnapshotFileOpts(path, source, StoreSnapshotOptions{})
}

// StoreSnapshotOptions controls WriteStoreSnapshotFileOpts.
type StoreSnapshotOptions struct {
	// OmitSummary writes a version-1 snapshot without the typed graph
	// summary section — byte-compatible with pre-v2 readers, at the cost of
	// a lazy summary rebuild if the file is later served with -estimator
	// summary.
	OmitSummary bool
}

// WriteStoreSnapshotFileOpts is WriteStoreSnapshotFile with explicit options
// (kgsnap build -nosummary).
func (d *Dataset) WriteStoreSnapshotFileOpts(path, source string, o StoreSnapshotOptions) error {
	return snap.WriteFileOpts(path, d.store,
		&snap.Meta{Source: source, CreatedUnix: time.Now().Unix()},
		snap.WriteOptions{OmitSummary: o.OmitSummary})
}

// LoadStoreSnapshotFile loads a store snapshot written by
// WriteStoreSnapshotFile or kgsnap. With mmap true the index arrays alias
// the file mapping (zero-copy, page-cache-bounded startup, falling back to a
// copy load on platforms without mmap); with mmap false the snapshot is
// fully verified and copied into private memory.
func LoadStoreSnapshotFile(path string, mmap bool) (*StoreSnapshot, error) {
	mode := snap.ModeCopy
	if mmap {
		mode = snap.ModeAuto
	}
	l, err := snap.LoadFile(path, snap.Options{Mode: mode})
	if err != nil {
		return nil, err
	}
	ds, err := FromStore(l.Store, RootThing)
	if err != nil {
		l.Close()
		return nil, err
	}
	return &StoreSnapshot{Dataset: ds, Mmap: l.Mmap, Source: l.Meta.Source, loaded: l}, nil
}

// Explain renders a compiled plan's access paths and cardinality estimates
// under the dataset's estimator.
func (d *Dataset) Explain(pl *Plan) string { return pl.Explain(d.estimator()) }

// Dataset is an indexed knowledge graph ready for exploration: the graph
// with its subclass closure materialized, the four trie index orders, and
// the vocabulary schema. Datasets are immutable and safe for concurrent
// readers (individual engine runners are not; create one per goroutine).
type Dataset struct {
	graph  *rdf.Graph
	store  *index.Store
	schema explore.Schema
	// est is the configured cardinality estimator; nil means the default
	// span statistics (see UseEstimator).
	est card.Estimator
}

// FromGraph prepares a dataset from a graph: it materializes the subclass
// closure under the given root class IRI (use rdf.OWLThing via RootThing for
// the default), deduplicates, and builds the indexes. The graph must carry
// rdf:type triples. The graph is retained and modified (closure triples are
// added).
func FromGraph(g *Graph, rootIRI string) (*Dataset, error) {
	explore.MaterializeClosure(g, rootIRI)
	schema, err := explore.SchemaOf(g.Dict, rootIRI)
	if err != nil {
		return nil, err
	}
	return &Dataset{graph: g, store: index.Build(g), schema: schema}, nil
}

// RootThing is the default root class IRI (owl:Thing).
const RootThing = rdf.OWLThing

// LoadNTriples reads an N-Triples stream and prepares a dataset rooted at
// owl:Thing.
func LoadNTriples(r io.Reader) (*Dataset, error) {
	g, err := rdf.ReadNTriples(r)
	if err != nil {
		return nil, err
	}
	return FromGraph(g, RootThing)
}

// LoadFile loads a dataset from a file, choosing the format by extension:
// ".ttl" Turtle, ".kgx" binary graph snapshot (WriteSnapshot), ".kgs" store
// snapshot (loaded in copy mode; use LoadStoreSnapshotFile for the mmap
// fast path), anything else N-Triples.
func LoadFile(path string) (*Dataset, error) {
	if strings.HasSuffix(path, ".kgs") {
		ss, err := LoadStoreSnapshotFile(path, false)
		if err != nil {
			return nil, err
		}
		return ss.Dataset, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	switch {
	case strings.HasSuffix(path, ".ttl"):
		return LoadTurtle(br)
	case strings.HasSuffix(path, ".kgx"):
		return LoadSnapshot(br)
	default:
		return LoadNTriples(br)
	}
}

// GenerateDBpediaSim builds the synthetic DBpedia-like dataset at the given
// scale (1.0 is roughly 1.2M triples; see DESIGN.md §3).
func GenerateDBpediaSim(scale float64) (*Dataset, error) {
	return generate(kggen.DBpediaSim(scale))
}

// GenerateLGDSim builds the synthetic LinkedGeoData-like dataset.
func GenerateLGDSim(scale float64) (*Dataset, error) {
	return generate(kggen.LGDSim(scale))
}

func generate(cfg kggen.Config) (*Dataset, error) {
	g, schema, err := kggen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Dataset{graph: g, store: index.Build(g), schema: schema}, nil
}

// Graph returns the underlying graph (including derived closure triples).
func (d *Dataset) Graph() *Graph { return d.graph }

// Dict returns the term dictionary.
func (d *Dataset) Dict() *Dict { return d.graph.Dict }

// NumTriples returns the number of indexed triples.
func (d *Dataset) NumTriples() int { return d.store.NumTriples() }

// IndexBytes estimates the resident size of the four index orders.
func (d *Dataset) IndexBytes() int64 { return d.store.EstimateBytes() }

// Root returns the initial exploration state: the root class bar.
func (d *Dataset) Root() *ExploreState { return explore.Root(d.schema) }

// ExpansionsOf returns the legal expansions from the state's bar kind
// (the transition system of Fig. 3).
func ExpansionsOf(s *ExploreState) []ExploreOp { return explore.Expansions(s.Kind) }

// ParseQuery parses a query in the SPARQL fragment of Fig. 4, interning
// constants into the dataset's dictionary.
func (d *Dataset) ParseQuery(src string) (*ParsedQuery, error) {
	return sparql.Parse(src, d.graph.Dict)
}

// PrintQuery renders a query in the fragment's concrete syntax.
func (d *Dataset) PrintQuery(q *Query, names map[string]Var) string {
	return sparql.Print(q, d.graph.Dict, names)
}

// Compile plans a query for execution.
func (d *Dataset) Compile(q *Query) (*Plan, error) { return query.Compile(q) }

// ExactEngine selects one of the exact evaluation strategies.
type ExactEngine int

const (
	// EngineCTJ is Cached Trie Join, the paper's fastest exact engine.
	EngineCTJ ExactEngine = iota
	// EngineLFTJ is Leapfrog Trie Join without caching.
	EngineLFTJ
	// EngineBaseline is the pairwise hash-join engine (Virtuoso stand-in).
	EngineBaseline
)

func (e ExactEngine) String() string {
	switch e {
	case EngineCTJ:
		return "ctj"
	case EngineLFTJ:
		return "lftj"
	case EngineBaseline:
		return "baseline"
	default:
		return fmt.Sprintf("ExactEngine(%d)", int(e))
	}
}

// Exact evaluates the plan exactly with the chosen engine, returning
// per-group counts (GlobalGroup for ungrouped queries).
func (d *Dataset) Exact(pl *Plan, engine ExactEngine) (map[ID]float64, error) {
	return d.ExactCtx(context.Background(), pl, engine)
}

// ExactCtx is Exact under a context: every engine checks ctx periodically
// inside its enumeration loops, so a long exact run aborts promptly with
// ctx.Err() when the caller goes away.
func (d *Dataset) ExactCtx(ctx context.Context, pl *Plan, engine ExactEngine) (map[ID]float64, error) {
	switch engine {
	case EngineCTJ:
		return ctj.EvaluateCtxEst(ctx, d.store, pl, d.est)
	case EngineLFTJ:
		return lftj.EvaluateCtx(ctx, d.store, pl)
	case EngineBaseline:
		return baseline.EvaluateCtx(ctx, d.store, pl)
	default:
		return nil, fmt.Errorf("kgexplore: unknown engine %v", engine)
	}
}

// CompileUnion validates and plans every branch of a union.
func (d *Dataset) CompileUnion(u *UnionQuery) (*UnionPlan, error) {
	return query.CompileUnion(u)
}

// ExactUnion evaluates a compiled union exactly with the chosen engine,
// under SPARQL bag semantics: COUNT and SUM add across branches, AVG is the
// ratio of the summed numerators and denominators, and COUNT(DISTINCT)
// deduplicates (group, β) pairs across branches.
func (d *Dataset) ExactUnion(up *UnionPlan, engine ExactEngine) (map[ID]float64, error) {
	return d.ExactUnionCtx(context.Background(), up, engine)
}

// ExactUnionCtx is ExactUnion under a context.
func (d *Dataset) ExactUnionCtx(ctx context.Context, up *UnionPlan, engine ExactEngine) (map[ID]float64, error) {
	switch engine {
	case EngineCTJ:
		return ctj.EvaluateUnionCtxEst(ctx, d.store, up, d.est)
	case EngineLFTJ:
		return lftj.EvaluateUnionCtx(ctx, d.store, up)
	case EngineBaseline:
		return (&baseline.Engine{}).EvaluateUnionCtx(ctx, d.store, up)
	default:
		return nil, fmt.Errorf("kgexplore: unknown engine %v", engine)
	}
}

// UnionEstimator estimates a UNION online: each branch is one stratum run by
// its own Audit Join runner, walks are interleaved in proportion to the
// branches' estimated sizes, and Snapshot merges the strata with summed
// estimates and quadrature CIs (wj.MergeStratified). It implements Stepper,
// so Drive and RunWalks apply.
type UnionEstimator = exec.Union

// NewUnionEstimator creates the stratified union estimator. COUNT(DISTINCT)
// unions are refused with ErrDistinctUnion — per-branch walks cannot observe
// cross-branch duplicates — and must use ExactUnion.
func (d *Dataset) NewUnionEstimator(up *UnionPlan, seed int64) (*UnionEstimator, error) {
	if up.Query.Distinct() {
		return nil, query.ErrDistinctUnion
	}
	branches := make([]exec.AccStepper, len(up.Plans))
	weights := make([]float64, len(up.Plans))
	for i, pl := range up.Plans {
		branches[i] = core.New(d.store, pl, core.Options{
			Threshold: core.DefaultThreshold,
			Seed:      seed + int64(i)*1_000_003,
			Estimator: d.est,
		})
		weights[i] = d.estimator().JoinSize(pl).Value
	}
	return exec.NewUnion(branches, weights), nil
}

// AutoUnionCtx evaluates a union with the Auto strategy: exactly with CTJ
// when the summed branch estimates are small (or the union is DISTINCT,
// which has no estimator), otherwise online with the stratified union
// estimator under the budget.
func (d *Dataset) AutoUnionCtx(ctx context.Context, up *UnionPlan, budget time.Duration, seed int64) (AutoResult, error) {
	total := 0.0
	for _, pl := range up.Plans {
		total += d.estimator().JoinSize(pl).Value
	}
	if up.Query.Distinct() || total <= AutoExactLimit {
		counts, err := ctj.EvaluateUnionCtxEst(ctx, d.store, up, d.est)
		if err != nil {
			return AutoResult{}, err
		}
		return AutoResult{Counts: counts, Exact: true}, nil
	}
	u, err := d.NewUnionEstimator(up, seed)
	if err != nil {
		return AutoResult{}, err
	}
	rep, err := exec.Drive(ctx, u, exec.Options{Budget: budget, Batch: 128})
	snap := rep.Final
	return AutoResult{Counts: snap.Estimates, CI: snap.CI, Walks: snap.Walks}, err
}

// AutoResult is what Auto returns: the per-group counts, whether they are
// exact, and the CI map when they are estimates.
type AutoResult struct {
	Counts map[ID]float64
	CI     map[ID]float64 // nil when exact
	Exact  bool
	Walks  int64 // walks performed when estimated
}

// AutoExactLimit is the estimated join size below which Auto answers
// exactly with CTJ instead of estimating: small joins are cheaper to just
// compute, and the answer is then precise — the hybrid strategy an
// exploration UI wants by default.
const AutoExactLimit = 1 << 16

// Auto evaluates the plan with the strategy an interactive UI would pick:
// exactly with CTJ when the statistics estimate the join to be small,
// otherwise online with Audit Join under the time budget.
func (d *Dataset) Auto(pl *Plan, budget time.Duration, seed int64) (AutoResult, error) {
	return d.AutoCtx(context.Background(), pl, budget, seed)
}

// AutoCtx is Auto under a context: a cancelled exact branch returns
// ctx.Err(); a cancelled estimation branch returns the estimate accumulated
// so far alongside ctx.Err().
func (d *Dataset) AutoCtx(ctx context.Context, pl *Plan, budget time.Duration, seed int64) (AutoResult, error) {
	if d.estimator().JoinSize(pl).Value <= AutoExactLimit {
		counts, err := ctj.EvaluateCtxEst(ctx, d.store, pl, d.est)
		if err != nil {
			return AutoResult{}, err
		}
		return AutoResult{Counts: counts, Exact: true}, nil
	}
	r := core.New(d.store, pl, core.Options{Threshold: core.DefaultThreshold, Seed: seed, Estimator: d.est})
	rep, err := exec.Drive(ctx, r, exec.Options{Budget: budget, Batch: 128})
	snap := rep.Final
	return AutoResult{Counts: snap.Estimates, CI: snap.CI, Walks: snap.Walks}, err
}

// NewWanderJoin creates a Wander Join estimator for the plan.
func (d *Dataset) NewWanderJoin(pl *Plan, seed int64) *WanderJoin {
	return wj.New(d.store, pl, seed)
}

// NewAuditJoin creates an Audit Join estimator for the plan. The dataset's
// configured cardinality estimator drives the tipping oracle unless the
// options name one explicitly.
func (d *Dataset) NewAuditJoin(pl *Plan, opts AuditJoinOptions) *AuditJoin {
	if opts.Estimator == nil {
		opts.Estimator = d.est
	}
	return core.New(d.store, pl, opts)
}

// NewStratifiedAuditJoin creates a stratified Audit Join estimator: walk
// roots are stratified by their subject's characteristic-set bucket and the
// walk budget is Neyman-allocated across strata. Plans that cannot be
// stratified (DISTINCT, membership roots, single-bucket spans) degrade to a
// uniform runner; Stats().Fallback records why.
func (d *Dataset) NewStratifiedAuditJoin(pl *Plan, opts StratifiedAuditJoinOptions) *StratifiedAuditJoin {
	if opts.Estimator == nil {
		opts.Estimator = d.est
	}
	return core.NewStratified(d.store, pl, opts)
}

// PathStep records one exploration interaction portably (by decoded term),
// so a session can be replayed on another dataset.
type PathStep = explore.PathStep

// Replay applies a recorded exploration path to this dataset.
func (d *Dataset) Replay(steps []PathStep) (*ExploreState, error) {
	return explore.Replay(d.schema, d.graph.Dict, steps)
}

// CompareBar pairs one category's counts across two datasets.
type CompareBar struct {
	Category Term
	A, B     float64 // exact counts in the two datasets (0 when absent)
}

// CompareChart replays the same exploration path on two datasets and
// evaluates the same expansion on both (exactly, with CTJ), aligning the
// bars by category term — the paper's "contrast multiple knowledge graphs"
// use-case (§VI). Bars are sorted by descending A count, then B, then
// category.
func CompareChart(a, b *Dataset, steps []PathStep, op ExploreOp) ([]CompareBar, error) {
	sa, err := a.Replay(steps)
	if err != nil {
		return nil, fmt.Errorf("dataset A: %w", err)
	}
	sb, err := b.Replay(steps)
	if err != nil {
		return nil, fmt.Errorf("dataset B: %w", err)
	}
	barsA, err := a.Chart(sa, op)
	if err != nil {
		return nil, fmt.Errorf("dataset A: %w", err)
	}
	barsB, err := b.Chart(sb, op)
	if err != nil {
		return nil, fmt.Errorf("dataset B: %w", err)
	}
	merged := map[Term]*CompareBar{}
	order := []Term{}
	for _, bar := range barsA {
		merged[bar.Category] = &CompareBar{Category: bar.Category, A: bar.Count}
		order = append(order, bar.Category)
	}
	for _, bar := range barsB {
		if m, ok := merged[bar.Category]; ok {
			m.B = bar.Count
		} else {
			merged[bar.Category] = &CompareBar{Category: bar.Category, B: bar.Count}
			order = append(order, bar.Category)
		}
	}
	out := make([]CompareBar, 0, len(order))
	for _, term := range order {
		out = append(out, *merged[term])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A > out[j].A
		}
		if out[i].B != out[j].B {
			return out[i].B > out[j].B
		}
		return out[i].Category.Value < out[j].Category.Value
	})
	return out, nil
}

// Bar is one bar of a rendered chart.
type Bar struct {
	Category Term
	Count    float64
	CI       float64 // 0.95 half-width; zero for exact evaluation
}

// Chart evaluates the expansion op on the state exactly (with CTJ) and
// returns the bars sorted by descending count — what the paper's UI
// renders. For online aggregation, compile state.Query(op) and drive a
// WanderJoin/AuditJoin runner directly.
func (d *Dataset) Chart(s *ExploreState, op ExploreOp) ([]Bar, error) {
	q, err := s.Query(op)
	if err != nil {
		return nil, err
	}
	pl, err := query.Compile(q)
	if err != nil {
		return nil, err
	}
	counts, err := ctj.EvaluateCtxEst(context.Background(), d.store, pl, d.est)
	if err != nil {
		return nil, err
	}
	return d.BarsOf(counts, nil), nil
}

// BarsOf converts a per-group result (and optional CI map) into bars sorted
// by descending count, decoding group IDs through the dictionary.
func (d *Dataset) BarsOf(counts map[ID]float64, ci map[ID]float64) []Bar {
	return barsOf(d.graph.Dict, counts, ci)
}

// barsOf is the dictionary-parameterized core of BarsOf, shared by Dataset
// and ShardedDataset.
func barsOf(dict *Dict, counts map[ID]float64, ci map[ID]float64) []Bar {
	bars := make([]Bar, 0, len(counts))
	for id, c := range counts {
		b := Bar{Count: c}
		if id != GlobalGroup {
			b.Category = dict.Term(id)
		}
		if ci != nil {
			b.CI = ci[id]
		}
		bars = append(bars, b)
	}
	sortBars(bars)
	return bars
}

// sortBars orders by descending count, then by category for determinism.
func sortBars(bars []Bar) {
	sort.Slice(bars, func(i, j int) bool {
		if bars[i].Count != bars[j].Count {
			return bars[i].Count > bars[j].Count
		}
		return bars[i].Category.Value < bars[j].Category.Value
	})
}
