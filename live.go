package kgexplore

import (
	"context"
	"fmt"
	"strings"

	"kgexplore/internal/exec"
	"kgexplore/internal/explore"
	"kgexplore/internal/index"
	"kgexplore/internal/live"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/snap"
	"kgexplore/internal/sparql"
)

// Re-exported live-ingestion types (internal/live).
type (
	// LiveOptions configure a live dataset: the base store's closer, the
	// write-ahead-log path (empty disables durability) and NoSync.
	LiveOptions = live.Options
	// LiveIngestOp is one decoded mutation: an insert or delete of a triple
	// given by terms (terms may be new; they are interned on apply).
	LiveIngestOp = live.DecodedOp
	// LiveStats is the overlay telemetry snapshot: generation, layer sizes,
	// applied batches, compactions, WAL size and the last background error.
	LiveStats = live.Stats
	// LiveView is an immutable base+delta+tombstones generation; readers
	// resolve against one view for their whole run.
	LiveView = live.View
	// LiveWalker runs Audit Join walks over one overlay view. It is a
	// Stepper: drive it with Drive or RunWalks.
	LiveWalker = live.Walker
	// LiveWalkerOptions configure one overlay walker (tipping threshold,
	// seed, estimator).
	LiveWalkerOptions = live.WalkerOptions
	// LiveCompactResult reports one background compaction: the fresh
	// snapshot path, residual overlay sizes, and the retired base's closer
	// (close it only after readers of pre-compaction views drain).
	LiveCompactResult = live.CompactResult
	// ParseError describes a syntax error in N-Triples input (ingest
	// endpoints use it to distinguish client errors from apply failures).
	ParseError = rdf.ParseError
)

// ErrLiveDistinct reports a COUNT(DISTINCT) plan handed to the overlay
// walker; distinct queries on live datasets take the exact merged-view path
// (ExactCtx) instead of risking a silently biased estimate.
var ErrLiveDistinct = live.ErrDistinctOverlay

// ErrLiveCompacting reports a Compact call while another compaction is in
// flight; ingest and serving continue regardless.
var ErrLiveCompacting = live.ErrCompacting

// LiveDataset is the updatable counterpart of Dataset: an in-memory delta
// overlay (inserts plus tombstones) over the immutable — typically mmap'd —
// base store, with optional write-ahead durability and background
// compaction into fresh snapshots. Exploration (parsing, compiling, charts)
// works identically; online aggregation runs merged-view Audit Join whose
// root weights come from merged base+delta cardinalities, so estimates stay
// unbiased for the live triple set. All methods are safe for concurrent
// use; individual walkers are not (create one per goroutine).
type LiveDataset struct {
	ls     *live.Store
	schema explore.Schema
}

// Live wraps the dataset's built store into a live dataset. The dataset's
// dictionary is retained and grows with ingested terms; opts.Closer should
// own the base's backing resources (an mmap'ed snapshot load), and
// opts.WALPath enables crash-replayable durability for acknowledged
// batches.
func (d *Dataset) Live(opts LiveOptions) (*LiveDataset, error) {
	ls, err := live.NewStore(d.store, opts)
	if err != nil {
		return nil, err
	}
	return &LiveDataset{ls: ls, schema: d.schema}, nil
}

// Close closes the WAL and the current base's closer. Retired bases from
// earlier compactions are closed by whoever received their
// LiveCompactResult.
func (d *LiveDataset) Close() error { return d.ls.Close() }

// NumTriples returns the current live triple count (base − tombstones +
// delta).
func (d *LiveDataset) NumTriples() int { return d.ls.NumTriples() }

// IndexBytes estimates the resident size of the base and delta indexes.
func (d *LiveDataset) IndexBytes() int64 { return d.ls.View().IndexBytes() }

// Dict returns the shared term dictionary (safe for concurrent interning).
func (d *LiveDataset) Dict() *Dict { return d.ls.Dict() }

// Root returns the initial exploration state: the root class bar.
func (d *LiveDataset) Root() *ExploreState { return explore.Root(d.schema) }

// ParseQuery parses a query in the SPARQL fragment of Fig. 4, interning
// constants into the shared dictionary.
func (d *LiveDataset) ParseQuery(src string) (*ParsedQuery, error) {
	return sparql.Parse(src, d.ls.Dict())
}

// Compile plans a query for execution.
func (d *LiveDataset) Compile(q *Query) (*Plan, error) { return query.Compile(q) }

// BarsOf converts a per-group result (and optional CI map) into bars sorted
// by descending count, decoding group IDs through the shared dictionary.
func (d *LiveDataset) BarsOf(counts map[ID]float64, ci map[ID]float64) []Bar {
	return barsOf(d.ls.Dict(), counts, ci)
}

// EstimatorName reports the cardinality estimator behind tipping decisions;
// live datasets use span statistics over the merged layers.
func (d *LiveDataset) EstimatorName() string { return EstimatorSpan }

// View returns the current immutable view (wait-free); capture one per run
// for snapshot-consistent reads under ingest.
func (d *LiveDataset) View() *LiveView { return d.ls.View() }

// Stats returns overlay, compaction and WAL telemetry.
func (d *LiveDataset) Stats() LiveStats { return d.ls.Stats() }

// LastErr returns the most recent background (WAL or compaction) error, or
// nil.
func (d *LiveDataset) LastErr() error { return d.ls.LastErr() }

// Ingest applies one batch of decoded mutations in order: the batch is
// WAL-logged (when durability is configured) before it is acknowledged, and
// a fresh view generation is published. Never triggers an index rebuild —
// rebuilds happen only in background compaction.
func (d *LiveDataset) Ingest(ops []LiveIngestOp) error { return d.ls.ApplyDecoded(ops) }

// IngestNTriples parses N-Triples lines into one batch — adds first, then
// deletes, applied atomically in order — and ingests it. Blank lines and
// #-comments are skipped. Returns the number of operations applied.
func (d *LiveDataset) IngestNTriples(adds, dels []string) (int, error) {
	ops := make([]LiveIngestOp, 0, len(adds)+len(dels))
	appendLines := func(lines []string, del bool) error {
		for i, line := range lines {
			if s := strings.TrimSpace(line); s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			t, err := rdf.ParseTripleLine(line)
			if err != nil {
				verb := "add"
				if del {
					verb = "delete"
				}
				return fmt.Errorf("%s line %d: %w", verb, i+1, err)
			}
			ops = append(ops, LiveIngestOp{Del: del, S: t.S, P: t.P, O: t.O})
		}
		return nil
	}
	if err := appendLines(adds, false); err != nil {
		return 0, err
	}
	if err := appendLines(dels, true); err != nil {
		return 0, err
	}
	if err := d.ls.ApplyDecoded(ops); err != nil {
		return 0, err
	}
	return len(ops), nil
}

// NewLiveWalker creates an Audit Join walker over the CURRENT view.
// COUNT(DISTINCT) plans fail with ErrLiveDistinct — route them to ExactCtx.
func (d *LiveDataset) NewLiveWalker(pl *Plan, opts LiveWalkerOptions) (*LiveWalker, error) {
	return live.NewWalker(d.ls.View(), pl, opts)
}

// ExactCtx evaluates the plan exactly over the current view's live triple
// set by merged enumeration (tombstones filtered), with cooperative
// cancellation. This is the path DISTINCT queries take on live datasets.
func (d *LiveDataset) ExactCtx(ctx context.Context, pl *Plan) (map[ID]float64, error) {
	return live.Exact(ctx, d.ls.View(), pl)
}

// CompileUnion validates and plans every branch of a union.
func (d *LiveDataset) CompileUnion(u *UnionQuery) (*UnionPlan, error) {
	return query.CompileUnion(u)
}

// ExactUnionCtx evaluates a union exactly over the current view: COUNT and
// SUM add across branches, AVG is the ratio of the summed numerators and
// denominators, and COUNT(DISTINCT) deduplicates (group, β) pairs across
// branches through one shared value set.
func (d *LiveDataset) ExactUnionCtx(ctx context.Context, up *UnionPlan) (map[ID]float64, error) {
	return live.ExactUnion(ctx, d.ls.View(), up)
}

// NewUnionEstimator creates the stratified union estimator over ONE captured
// view: each branch is a live walker (tombstone rejection and all), walks
// interleave proportionally to the branches' root cardinalities, and
// Snapshot merges the branch accumulators as strata. COUNT(DISTINCT) unions
// are refused with ErrDistinctUnion — use ExactUnionCtx.
func (d *LiveDataset) NewUnionEstimator(up *UnionPlan, opts LiveWalkerOptions) (*UnionEstimator, error) {
	if up.Query.Distinct() {
		return nil, query.ErrDistinctUnion
	}
	v := d.ls.View()
	branches := make([]exec.AccStepper, len(up.Plans))
	weights := make([]float64, len(up.Plans))
	for i, pl := range up.Plans {
		bopts := opts
		bopts.Seed = opts.Seed + int64(i)*1_000_003
		w, err := live.NewWalker(v, pl, bopts)
		if err != nil {
			return nil, err
		}
		branches[i] = w
		weights[i] = float64(w.RootCard())
	}
	return exec.NewUnion(branches, weights), nil
}

// Compact streams the current view through the external builder into a
// fresh .kgs snapshot at path, mmap-loads it and adopts it as the new base.
// Ingest and serving proceed concurrently; batches applied during the build
// stay in the overlay. Returns ErrLiveCompacting when one is already
// running. The result's Retired closer must be closed only after readers of
// pre-compaction views drain (the server's epoch rotation does this).
func (d *LiveDataset) Compact(path string) (LiveCompactResult, error) {
	return d.ls.Compact(path, snap.ExtBuildOptions{})
}

// CompactInMemory folds the current view into a freshly built in-memory
// store and adopts it — the no-disk variant for tests and benchmarks.
func (d *LiveDataset) CompactInMemory() (LiveCompactResult, error) {
	_, res, err := d.ls.CompactInMemory()
	return res, err
}

// LoadLiveDataset loads a base store snapshot (.kgs) and wraps it as a live
// dataset whose closer is the snapshot mapping: the kgserver -live startup
// path. walPath ("" disables) configures write-ahead durability.
func LoadLiveDataset(path string, mmap bool, walPath string, noSync bool) (*LiveDataset, error) {
	ss, err := LoadStoreSnapshotFile(path, mmap)
	if err != nil {
		return nil, err
	}
	lds, err := ss.Dataset.Live(LiveOptions{Closer: ss, WALPath: walPath, NoSync: noSync})
	if err != nil {
		ss.Close()
		return nil, err
	}
	return lds, nil
}

// BaseTriples returns the base layer's triples in SPO order — the
// deletable population for ingest benchmarks (deleting a base triple
// exercises the tombstone path rather than the add-cancel path).
func (d *LiveDataset) BaseTriples() []rdf.Triple {
	return d.ls.View().Base().Triples(index.SPO)
}
