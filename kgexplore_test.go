package kgexplore

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const tinyNT = `
<alice> <birthPlace> <paris> .
<bob> <birthPlace> <paris> .
<carol> <birthPlace> <lima> .
<alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Person> .
<bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Person> .
<carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Robot> .
<paris> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> .
<lima> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> .
<Person> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <Agent> .
`

func loadTiny(t *testing.T) *Dataset {
	t.Helper()
	d, err := LoadNTriples(strings.NewReader(tinyNT))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLoadNTriples(t *testing.T) {
	d := loadTiny(t)
	if d.NumTriples() <= 9 {
		t.Errorf("NumTriples = %d; closure triples missing?", d.NumTriples())
	}
	if d.IndexBytes() <= 0 {
		t.Error("IndexBytes <= 0")
	}
	if d.Dict().Len() == 0 || d.Graph().Len() == 0 {
		t.Error("accessors broken")
	}
}

func TestParseAndExactEnginesAgree(t *testing.T) {
	d := loadTiny(t)
	p, err := d.ParseQuery(`
		SELECT ?c COUNT(DISTINCT ?o) WHERE {
			?s <birthPlace> ?o .
			?s a <Person> .
			?o a ?c .
		} GROUP BY ?c`)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := d.Compile(p.Query)
	if err != nil {
		t.Fatal(err)
	}
	var results []map[ID]float64
	for _, e := range []ExactEngine{EngineCTJ, EngineLFTJ, EngineBaseline} {
		res, err := d.Exact(pl, e)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		results = append(results, res)
	}
	city, _ := d.Dict().LookupIRI("City")
	for i, res := range results {
		if res[city] != 1 { // alice+bob born in paris; distinct places = 1
			t.Errorf("engine %d: %v, want City:1", i, res)
		}
	}
	if _, err := d.Exact(pl, ExactEngine(99)); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestOnlineEstimatorsConverge(t *testing.T) {
	d := loadTiny(t)
	p, err := d.ParseQuery(`
		SELECT ?c COUNT(?o) WHERE {
			?s <birthPlace> ?o .
			?o a ?c .
		} GROUP BY ?c`)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := d.Compile(p.Query)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := d.Exact(pl, EngineCTJ)
	wjr := d.NewWanderJoin(pl, 1)
	ajr := d.NewAuditJoin(pl, AuditJoinOptions{Threshold: DefaultTippingThreshold, Seed: 1})
	RunWalks(wjr, 50000)
	RunWalks(ajr, 50000)
	city, _ := d.Dict().LookupIRI("City")
	for name, est := range map[string]float64{
		"wj": wjr.Snapshot().Estimates[city],
		"aj": ajr.Snapshot().Estimates[city],
	} {
		if math.Abs(est-exact[city])/exact[city] > 0.1 {
			t.Errorf("%s estimate %.2f vs exact %.0f", name, est, exact[city])
		}
	}
}

func TestExplorationChart(t *testing.T) {
	d := loadTiny(t)
	root := d.Root()
	bars, err := d.Chart(root, OpSubclass)
	if err != nil {
		t.Fatal(err)
	}
	// Direct subclasses of Thing: Agent (2 persons via closure), Robot (1),
	// City (2). Person is a subclass of Agent, not of Thing.
	want := map[string]float64{"Agent": 2, "Robot": 1, "City": 2}
	if len(bars) != len(want) {
		t.Fatalf("bars = %+v", bars)
	}
	for _, b := range bars {
		if want[b.Category.Value] != b.Count {
			t.Errorf("bar %s = %v, want %v", b.Category.Value, b.Count, want[b.Category.Value])
		}
	}
	// Bars sorted by descending count.
	for i := 1; i < len(bars); i++ {
		if bars[i].Count > bars[i-1].Count {
			t.Error("bars not sorted")
		}
	}
}

func TestExplorationSelectAndFocus(t *testing.T) {
	d := loadTiny(t)
	root := d.Root()
	agent, _ := d.Dict().LookupIRI("Agent")
	s, err := root.Select(OpSubclass, agent)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := d.Compile(s.FocusQuery())
	if err != nil {
		t.Fatal(err)
	}
	res, _ := d.Exact(pl, EngineCTJ)
	if res[GlobalGroup] != 2 {
		t.Errorf("agents = %v, want 2", res)
	}
	bars, err := d.Chart(s, OpOutProp)
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) < 2 {
		t.Errorf("out-prop bars = %+v", bars)
	}
}

func TestGenerateDatasets(t *testing.T) {
	d1, err := GenerateDBpediaSim(0.005)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := GenerateLGDSim(0.005)
	if err != nil {
		t.Fatal(err)
	}
	if d1.NumTriples() == 0 || d2.NumTriples() == 0 {
		t.Error("generated datasets empty")
	}
}

func TestGraphRoundTripThroughFacade(t *testing.T) {
	g := NewGraph()
	g.AddIRIs("a", "p", "b")
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != 1 {
		t.Errorf("round trip lost triples: %d", g2.Len())
	}
}

func TestPrintQuery(t *testing.T) {
	d := loadTiny(t)
	p, err := d.ParseQuery(`SELECT COUNT(?x) WHERE { ?x <birthPlace> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	s := d.PrintQuery(p.Query, p.Names)
	if !strings.Contains(s, "<birthPlace>") || !strings.Contains(s, "?x") {
		t.Errorf("PrintQuery = %q", s)
	}
}

func TestEngineString(t *testing.T) {
	if EngineCTJ.String() != "ctj" || EngineLFTJ.String() != "lftj" || EngineBaseline.String() != "baseline" {
		t.Error("engine names wrong")
	}
}
