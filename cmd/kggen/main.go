// Command kggen generates one of the synthetic evaluation datasets and
// writes it as N-Triples, printing its Table I row to stderr.
//
// Usage:
//
//	kggen -dataset dbpedia -scale 0.1 -out dbpedia-sim.nt
//	kggen -dataset lgd -scale 0.05 -out -          # N-Triples to stdout
//	kggen -dataset dbpedia -scale 0.1 -info        # stats only, no dump
package main

import (
	"flag"
	"fmt"
	"os"

	"kgexplore/internal/kggen"
	"kgexplore/internal/rdf"
)

func main() {
	dataset := flag.String("dataset", "dbpedia", "dataset to generate: dbpedia or lgd")
	scale := flag.Float64("scale", 0.1, "scale factor (1.0 is paper-shaped)")
	out := flag.String("out", "-", "output file for N-Triples ('-' for stdout)")
	infoOnly := flag.Bool("info", false, "print dataset info only, skip the dump")
	flag.Parse()

	var cfg kggen.Config
	switch *dataset {
	case "dbpedia":
		cfg = kggen.DBpediaSim(*scale)
	case "lgd":
		cfg = kggen.LGDSim(*scale)
	default:
		fmt.Fprintf(os.Stderr, "kggen: unknown dataset %q (want dbpedia or lgd)\n", *dataset)
		os.Exit(2)
	}

	g, _, err := kggen.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kggen: %v\n", err)
		os.Exit(1)
	}
	info := kggen.DatasetInfo(cfg.Name, g)
	fmt.Fprintf(os.Stderr, "%-12s triples=%d classes=%d props=%d (incl. materialized closure: %d triples)\n",
		info.Name, info.Triples, info.Classes, info.Props, g.Len())

	if *infoOnly {
		return
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kggen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rdf.WriteNTriples(w, g); err != nil {
		fmt.Fprintf(os.Stderr, "kggen: write: %v\n", err)
		os.Exit(1)
	}
}
