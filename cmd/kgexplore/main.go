// Command kgexplore is an interactive command-line version of the paper's
// exploration system (Fig. 1): bar charts over a knowledge graph, expanded
// step by step, with counts estimated by Audit Join (or computed exactly).
//
// Usage:
//
//	kgexplore -gen dbpedia -scale 0.05       # explore a synthetic dataset
//	kgexplore -load data.nt                  # explore an N-Triples file
//
// In the REPL, type `help` for the command list.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kgexplore"
)

type repl struct {
	ds     *kgexplore.Dataset
	state  *kgexplore.ExploreState
	stack  []*kgexplore.ExploreState
	engine string        // "aj", "wj", "ctj", "lftj", "baseline"
	budget time.Duration // for the online engines
	topN   int
	out    *bufio.Writer
	// lastCache holds the CTJ cache stats of the most recent aj run, printed
	// under the chart; nil after other engines.
	lastCache *kgexplore.CTJCacheStats
}

func main() {
	gen := flag.String("gen", "", "generate a synthetic dataset: dbpedia or lgd")
	scale := flag.Float64("scale", 0.05, "scale for -gen")
	load := flag.String("load", "", "load an N-Triples file")
	engine := flag.String("engine", "aj", "default engine: aj, wj, ctj, lftj, baseline")
	budget := flag.Duration("budget", 300*time.Millisecond, "time budget for online engines")
	estimator := flag.String("estimator", "", "cardinality estimator: "+
		kgexplore.EstimatorSpan+" (default) or "+kgexplore.EstimatorSummary)
	flag.Parse()

	var (
		ds  *kgexplore.Dataset
		err error
	)
	switch {
	case *load != "":
		ds, err = kgexplore.LoadFile(*load)
	case *gen == "lgd":
		ds, err = kgexplore.GenerateLGDSim(*scale)
	case *gen == "dbpedia" || *gen == "":
		ds, err = kgexplore.GenerateDBpediaSim(*scale)
	default:
		err = fmt.Errorf("unknown -gen %q", *gen)
	}
	if err != nil {
		fatal(err)
	}
	if *estimator != "" {
		if err := ds.UseEstimator(*estimator); err != nil {
			fatal(err)
		}
	}

	r := &repl{
		ds:     ds,
		state:  ds.Root(),
		engine: *engine,
		budget: *budget,
		topN:   15,
		out:    bufio.NewWriter(os.Stdout),
	}
	fmt.Fprintf(r.out, "kgexplore: %d triples indexed (%d MB). Type 'help'.\n",
		ds.NumTriples(), ds.IndexBytes()/(1<<20))
	r.printState()
	r.out.Flush()

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Fprint(r.out, "> ")
		r.out.Flush()
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		r.dispatch(line)
		r.out.Flush()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kgexplore: %v\n", err)
	os.Exit(1)
}

func (r *repl) dispatch(line string) {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		r.help()
	case "info":
		r.printState()
	case "ops":
		for _, op := range kgexplore.ExpansionsOf(r.state) {
			fmt.Fprintf(r.out, "  %v\n", op)
		}
	case "chart":
		if len(args) != 1 {
			fmt.Fprintln(r.out, "usage: chart <subclass|out-property|in-property|object|subject>")
			return
		}
		r.chart(args[0])
	case "select":
		if len(args) != 2 {
			fmt.Fprintln(r.out, "usage: select <op> <category-iri>")
			return
		}
		r.selectBar(args[0], args[1])
	case "back":
		if len(r.stack) == 0 {
			fmt.Fprintln(r.out, "at the root")
			return
		}
		r.state = r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		r.printState()
	case "engine":
		if len(args) == 1 {
			r.engine = args[0]
		}
		fmt.Fprintf(r.out, "engine: %s (budget %v)\n", r.engine, r.budget)
	case "budget":
		if len(args) == 1 {
			if d, err := time.ParseDuration(args[0]); err == nil {
				r.budget = d
			}
		}
		fmt.Fprintf(r.out, "budget: %v\n", r.budget)
	case "estimator":
		if len(args) == 1 {
			if err := r.ds.UseEstimator(args[0]); err != nil {
				fmt.Fprintln(r.out, err)
				return
			}
		}
		fmt.Fprintf(r.out, "estimator: %s\n", r.ds.EstimatorName())
	case "sparql":
		r.sparql(strings.TrimSpace(strings.TrimPrefix(line, "sparql")))
	case "explain":
		if len(args) != 1 {
			fmt.Fprintln(r.out, "usage: explain <op>")
			return
		}
		r.explain(args[0])
	case "save":
		if len(args) != 1 {
			fmt.Fprintln(r.out, "usage: save <file.kgx>")
			return
		}
		r.save(args[0])
	default:
		fmt.Fprintf(r.out, "unknown command %q; try 'help'\n", cmd)
	}
}

func (r *repl) help() {
	fmt.Fprint(r.out, `commands:
  info                      show the current bar
  ops                       legal expansions from here (Fig. 3)
  chart <op>                expand and show the bar chart
  select <op> <iri>         expand, then click the bar with that category
  back                      pop the exploration stack
  engine <aj|wj|ctj|lftj|baseline>
  budget <duration>         e.g. 500ms (online engines)
  estimator [span|summary]  show or switch the cardinality estimator
  sparql SELECT ...         run a Fig. 4 fragment query
  explain <op>              show the expansion query's plan and estimates
  save <file.kgx>           write a binary snapshot of the dataset
  quit
`)
}

func (r *repl) explain(opName string) {
	op, ok := parseOp(opName)
	if !ok {
		fmt.Fprintf(r.out, "unknown op %q\n", opName)
		return
	}
	q, err := r.state.Query(op)
	if err != nil {
		fmt.Fprintln(r.out, err)
		return
	}
	pl, err := r.ds.Compile(q)
	if err != nil {
		fmt.Fprintln(r.out, err)
		return
	}
	fmt.Fprint(r.out, r.ds.Explain(pl))
}

func (r *repl) save(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(r.out, err)
		return
	}
	defer f.Close()
	if err := r.ds.WriteSnapshot(f); err != nil {
		fmt.Fprintln(r.out, err)
		return
	}
	fmt.Fprintf(r.out, "saved %d triples to %s\n", r.ds.NumTriples(), path)
}

func (r *repl) printState() {
	cat := r.ds.Dict().Term(r.state.Category)
	fmt.Fprintf(r.out, "at %v bar %s (depth %d)\n", r.state.Kind, cat.Value, r.state.Depth())
}

func parseOp(s string) (kgexplore.ExploreOp, bool) {
	switch s {
	case "subclass":
		return kgexplore.OpSubclass, true
	case "out-property", "outprop", "out":
		return kgexplore.OpOutProp, true
	case "in-property", "inprop", "in":
		return kgexplore.OpInProp, true
	case "object":
		return kgexplore.OpObject, true
	case "subject":
		return kgexplore.OpSubject, true
	}
	return 0, false
}

func (r *repl) chart(opName string) {
	op, ok := parseOp(opName)
	if !ok {
		fmt.Fprintf(r.out, "unknown op %q\n", opName)
		return
	}
	q, err := r.state.Query(op)
	if err != nil {
		fmt.Fprintln(r.out, err)
		return
	}
	pl, err := r.ds.Compile(q)
	if err != nil {
		fmt.Fprintln(r.out, err)
		return
	}
	start := time.Now()
	counts, ci, err := r.run(pl)
	if err != nil {
		fmt.Fprintln(r.out, err)
		return
	}
	bars := r.ds.BarsOf(counts, ci)
	fmt.Fprintf(r.out, "%v chart: %d bars (%s, %v)\n",
		op, len(bars), r.engine, time.Since(start).Round(time.Millisecond))
	r.printBars(bars)
	r.printCacheStats()
}

func (r *repl) printBars(bars []kgexplore.Bar) {
	n := len(bars)
	if n > r.topN {
		n = r.topN
	}
	maxCount := 1.0
	if len(bars) > 0 && bars[0].Count > 0 {
		maxCount = bars[0].Count
	}
	for _, b := range bars[:n] {
		width := int(40 * b.Count / maxCount)
		if width < 1 && b.Count > 0 {
			width = 1
		}
		label := b.Category.Value
		if label == "" {
			label = "(all)"
		}
		ci := ""
		if b.CI > 0 {
			ci = fmt.Sprintf(" ±%.0f", b.CI)
		}
		fmt.Fprintf(r.out, "  %-40s %10.0f%s %s\n", trunc(label, 40), b.Count, ci, strings.Repeat("#", width))
	}
	if len(bars) > n {
		fmt.Fprintf(r.out, "  ... and %d more bars\n", len(bars)-n)
	}
}

// printCacheStats summarizes the CTJ session caches of the last aj run: how
// much of the walk finishing work was served from cache versus computed.
func (r *repl) printCacheStats() {
	cs := r.lastCache
	if cs == nil {
		return
	}
	mat := ""
	if cs.ProbMaterialized {
		mat = ", probs materialized"
	}
	fmt.Fprintf(r.out, "  ctj cache: agg %d/%d prob %d/%d count %d/%d exist %d/%d hits/misses%s\n",
		cs.AggHits, cs.AggMisses, cs.ProbHits, cs.ProbMisses,
		cs.CountHits, cs.CountMisses, cs.ExistHits, cs.ExistMisses, mat)
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func (r *repl) run(pl *kgexplore.Plan) (map[kgexplore.ID]float64, map[kgexplore.ID]float64, error) {
	r.lastCache = nil
	switch r.engine {
	case "ctj":
		res, err := r.ds.Exact(pl, kgexplore.EngineCTJ)
		return res, nil, err
	case "lftj":
		res, err := r.ds.Exact(pl, kgexplore.EngineLFTJ)
		return res, nil, err
	case "baseline":
		res, err := r.ds.Exact(pl, kgexplore.EngineBaseline)
		return res, nil, err
	case "wj":
		runner := r.ds.NewWanderJoin(pl, time.Now().UnixNano())
		rep, err := kgexplore.Drive(context.Background(), runner, kgexplore.DriveOptions{Budget: r.budget, Batch: 128})
		if err != nil {
			return nil, nil, err
		}
		return rep.Final.Estimates, rep.Final.CI, nil
	case "aj", "":
		runner := r.ds.NewAuditJoin(pl, kgexplore.AuditJoinOptions{
			Threshold: kgexplore.DefaultTippingThreshold,
			Seed:      time.Now().UnixNano(),
		})
		rep, err := kgexplore.Drive(context.Background(), runner, kgexplore.DriveOptions{Budget: r.budget, Batch: 128})
		if err != nil {
			return nil, nil, err
		}
		cs := runner.CacheStats()
		r.lastCache = &cs
		return rep.Final.Estimates, rep.Final.CI, nil
	default:
		return nil, nil, fmt.Errorf("unknown engine %q", r.engine)
	}
}

// runUnion evaluates a UNION query under the session engine: exact engines
// run the cross-branch exact union; online engines run the stratified union
// estimator, except DISTINCT unions, which have no unbiased estimator and
// fall back to the exact CTJ union.
func (r *repl) runUnion(u *kgexplore.UnionQuery) (map[kgexplore.ID]float64, map[kgexplore.ID]float64, error) {
	r.lastCache = nil
	up, err := r.ds.CompileUnion(u)
	if err != nil {
		return nil, nil, err
	}
	switch r.engine {
	case "ctj", "lftj", "baseline":
		eng := map[string]kgexplore.ExactEngine{
			"ctj": kgexplore.EngineCTJ, "lftj": kgexplore.EngineLFTJ, "baseline": kgexplore.EngineBaseline,
		}[r.engine]
		res, err := r.ds.ExactUnion(up, eng)
		return res, nil, err
	case "wj", "aj", "":
		if u.Distinct() {
			res, err := r.ds.ExactUnion(up, kgexplore.EngineCTJ)
			return res, nil, err
		}
		est, err := r.ds.NewUnionEstimator(up, time.Now().UnixNano())
		if err != nil {
			return nil, nil, err
		}
		rep, err := kgexplore.Drive(context.Background(), est, kgexplore.DriveOptions{Budget: r.budget, Batch: 128})
		if err != nil {
			return nil, nil, err
		}
		return rep.Final.Estimates, rep.Final.CI, nil
	default:
		return nil, nil, fmt.Errorf("unknown engine %q", r.engine)
	}
}

func (r *repl) selectBar(opName, iri string) {
	op, ok := parseOp(opName)
	if !ok {
		fmt.Fprintf(r.out, "unknown op %q\n", opName)
		return
	}
	id, ok := r.ds.Dict().LookupIRI(iri)
	if !ok {
		fmt.Fprintf(r.out, "unknown IRI %q\n", iri)
		return
	}
	ns, err := r.state.Select(op, id)
	if err != nil {
		fmt.Fprintln(r.out, err)
		return
	}
	r.stack = append(r.stack, r.state)
	r.state = ns
	r.printState()
}

func (r *repl) sparql(src string) {
	if src == "" {
		fmt.Fprintln(r.out, "usage: sparql SELECT ?g COUNT(DISTINCT ?x) WHERE { ... } GROUP BY ?g")
		return
	}
	p, err := r.ds.ParseQuery(src)
	if err != nil {
		fmt.Fprintln(r.out, err)
		return
	}
	start := time.Now()
	var counts, ci map[kgexplore.ID]float64
	if p.IsUnion() {
		counts, ci, err = r.runUnion(p.Union())
	} else {
		var pl *kgexplore.Plan
		pl, err = r.ds.Compile(p.Query)
		if err != nil {
			fmt.Fprintln(r.out, err)
			return
		}
		counts, ci, err = r.run(pl)
	}
	if err != nil {
		fmt.Fprintln(r.out, err)
		return
	}
	bars := r.ds.BarsOf(counts, ci)
	fmt.Fprintf(r.out, "%d groups (%s, %v)\n", len(bars), r.engine, time.Since(start).Round(time.Millisecond))
	r.printBars(bars)
	r.printCacheStats()
	var total float64
	for _, b := range bars {
		total += b.Count
	}
	fmt.Fprintf(r.out, "sum over groups: %.0f\n", total)
}
