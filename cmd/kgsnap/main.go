// Command kgsnap builds, inspects and verifies store snapshots (.kgs): the
// mmap-ready on-disk form of a fully built index.Store (see internal/snap).
// Building the index once offline and serving it with kgserver -snapshot
// turns startup from an O(n log n) sort-and-build into an O(1) mmap.
//
// Usage:
//
//	kgsnap build -load data.nt -out data.kgs
//	kgsnap build -gen dbpedia -scale 0.1 -out dbpedia.kgs
//	kgsnap shard -gen dbpedia -scale 0.1 -shards 4 -out dbpedia.kgm
//	kgsnap info data.kgs     # also accepts .kgm shard manifests
//	kgsnap verify data.kgs   # .kgm: checksums + partition placement scan
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kgexplore"

	"kgexplore/internal/kggen"
	"kgexplore/internal/rdf"
	"kgexplore/internal/snap"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "shard":
		shardBuild(os.Args[2:])
	case "info":
		inspect(os.Args[2:], false)
	case "verify":
		inspect(os.Args[2:], true)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  kgsnap build -load FILE | -gen dbpedia|lgd [-scale S] [-nosummary] -out FILE.kgs
               [-stream [-membudget MB]]   # -gen only: external-memory build
  kgsnap shard -load FILE | -gen dbpedia|lgd [-scale S] -shards K [-partitioner P] [-workers A,B,...] -out FILE.kgm
  kgsnap info FILE.kgs|FILE.kgm     # header, metadata and section table
  kgsnap verify FILE.kgs|FILE.kgm   # streamed checksum + structural verification
`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kgsnap: %v\n", err)
	os.Exit(1)
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	load := fs.String("load", "", "input dataset (N-Triples, Turtle, .kgx)")
	gen := fs.String("gen", "", "generate a synthetic dataset instead: dbpedia or lgd")
	scale := fs.Float64("scale", 0.05, "scale for -gen")
	out := fs.String("out", "", "output snapshot path (.kgs)")
	noSummary := fs.Bool("nosummary", false, "omit the typed graph summary section (writes a v1 snapshot for pre-v2 readers)")
	stream := fs.Bool("stream", false, "external-memory build: stream the generator through spill-sorted runs instead of materializing the graph (-gen only)")
	memBudget := fs.Int("membudget", 256, "sort-buffer budget in MiB for -stream")
	fs.Parse(args)
	if *out == "" || (*load == "") == (*gen == "") {
		usage()
	}
	if *stream {
		if *gen == "" {
			fmt.Fprintln(os.Stderr, "kgsnap: -stream requires -gen (file inputs are materialized by the parser)")
			os.Exit(2)
		}
		streamBuild(*gen, *scale, *out, *noSummary, *memBudget)
		return
	}

	start := time.Now()
	ds, source, err := loadInput(*load, *gen, *scale)
	if err != nil {
		fatal(err)
	}
	built := time.Since(start)

	start = time.Now()
	opts := kgexplore.StoreSnapshotOptions{OmitSummary: *noSummary}
	if err := ds.WriteStoreSnapshotFileOpts(*out, source, opts); err != nil {
		fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("kgsnap: %d triples built in %v, %d bytes written to %s in %v\n",
		ds.NumTriples(), built.Round(time.Millisecond), st.Size(), *out,
		time.Since(start).Round(time.Millisecond))
}

// streamBuild is the external-memory build path: the generator's triple
// stream goes straight through spill-sorted runs into the snapshot writer,
// so the fixture size is bounded by disk, not by the sort-time heap.
func streamBuild(gen string, scale float64, out string, noSummary bool, memBudgetMiB int) {
	var cfg kggen.Config
	switch gen {
	case "dbpedia":
		cfg = kggen.DBpediaSim(scale)
	case "lgd":
		cfg = kggen.LGDSim(scale)
	default:
		usage()
	}
	start := time.Now()
	meta := &snap.Meta{
		Source:      fmt.Sprintf("%s@%g (streamed)", cfg.Name, scale),
		CreatedUnix: time.Now().Unix(),
	}
	stats, err := snap.BuildExternalFile(out,
		func(emit func(rdf.Triple) error) (*rdf.Dict, error) {
			d, _, err := kggen.Stream(cfg, emit)
			return d, err
		},
		meta,
		snap.ExtBuildOptions{MemBudget: int64(memBudgetMiB) << 20, OmitSummary: noSummary})
	if err != nil {
		fatal(err)
	}
	fi, err := os.Stat(out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("kgsnap: %d triples (%d raw) streamed in %v, %d runs / %d spill bytes under %d MiB budget, %d bytes written to %s\n",
		stats.Triples, stats.RawTriples, time.Since(start).Round(time.Millisecond),
		stats.Runs, stats.SpillBytes, memBudgetMiB, fi.Size(), out)
}

// loadInput resolves the shared -load/-gen flags of build and shard.
func loadInput(load, gen string, scale float64) (*kgexplore.Dataset, string, error) {
	switch {
	case load != "":
		ds, err := kgexplore.LoadFile(load)
		return ds, load, err
	case gen == "lgd":
		ds, err := kgexplore.GenerateLGDSim(scale)
		return ds, fmt.Sprintf("lgd-sim@%g", scale), err
	case gen == "dbpedia":
		ds, err := kgexplore.GenerateDBpediaSim(scale)
		return ds, fmt.Sprintf("dbpedia-sim@%g", scale), err
	}
	usage()
	return nil, "", nil
}

func shardBuild(args []string) {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	load := fs.String("load", "", "input dataset (N-Triples, Turtle, .kgx, .kgs)")
	gen := fs.String("gen", "", "generate a synthetic dataset instead: dbpedia or lgd")
	scale := fs.Float64("scale", 0.05, "scale for -gen")
	shards := fs.Int("shards", 4, "number of shards")
	partitioner := fs.String("partitioner", "", "partitioner (default "+kgexplore.DefaultPartitioner+")")
	workers := fs.String("workers", "", "comma-separated kgworker addresses, one per shard, recorded as placement metadata")
	out := fs.String("out", "", "output manifest path (.kgm); shard .kgs files land next to it")
	fs.Parse(args)
	if *out == "" || (*load == "") == (*gen == "") {
		usage()
	}

	start := time.Now()
	ds, source, err := loadInput(*load, *gen, *scale)
	if err != nil {
		fatal(err)
	}
	sds, err := ds.BuildSharded(*shards, *partitioner)
	if err != nil {
		fatal(err)
	}
	built := time.Since(start)

	start = time.Now()
	m, err := sds.WriteShardedSnapshots(*out, source)
	if err != nil {
		fatal(err)
	}
	if *workers != "" {
		if m, err = kgexplore.SetShardWorkers(*out, strings.Split(*workers, ",")); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("kgsnap: %d triples in %d shards (%s) built in %v, written to %s in %v\n",
		sds.NumTriples(), m.Shards, m.Partitioner, built.Round(time.Millisecond), *out,
		time.Since(start).Round(time.Millisecond))
}

// shardInspect prints (info) or deep-checks (verify) a shard manifest. For
// verify that means every shard's checksums plus the partition placement
// scan — a set that fails must not be served.
func shardInspect(path string, verify bool) {
	start := time.Now()
	var (
		m   kgexplore.ShardManifest
		err error
	)
	if verify {
		m, err = kgexplore.VerifyShardSet(path)
	} else {
		sds, lerr := kgexplore.LoadShardedDataset(path, true)
		if lerr == nil {
			sds.Close()
		}
		m, err = kgexplore.ReadShardManifest(path)
		if err == nil && lerr != nil {
			err = lerr
		}
	}
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	elapsed := time.Since(start)

	total := 0
	for _, f := range m.Files {
		total += f.Triples
	}
	fmt.Printf("%s: shard manifest, format v%d\n", path, m.Version)
	fmt.Printf("  shards:      %d\n", m.Shards)
	fmt.Printf("  partitioner: %s\n", m.Partitioner)
	fmt.Printf("  triples:     %d\n", total)
	fmt.Printf("  source:      %s\n", orDash(m.Source))
	if m.CreatedUnix != 0 {
		fmt.Printf("  created:     %s\n", time.Unix(m.CreatedUnix, 0).UTC().Format(time.RFC3339))
	}
	for i, f := range m.Files {
		worker := ""
		if i < len(m.Workers) {
			worker = "  @ " + m.Workers[i]
		}
		fmt.Printf("  shard %2d:    %s (%d triples)%s\n", i, f.Path, f.Triples, worker)
	}
	if verify {
		fmt.Printf("  verified:    checksums and partition placement OK (%v)\n", elapsed.Round(time.Millisecond))
	}
}

func inspect(args []string, verify bool) {
	if len(args) != 1 {
		usage()
	}
	path := args[0]
	if strings.HasSuffix(path, ".kgm") {
		shardInspect(path, verify)
		return
	}
	start := time.Now()
	var (
		m           snap.Meta
		version     int
		sum         struct{ buckets, edges, bytes, millis int64 }
		hasSummary  bool
		loadedLabel string
	)
	if verify {
		// A streaming pass: every checksum, span bound and key ordering is
		// checked over a bounded buffer — nothing but the meta and summary
		// sections is ever resident, so verification memory is independent
		// of the snapshot size.
		rep, err := snap.VerifyFile(path)
		if err != nil {
			fatal(fmt.Errorf("verify: %w", err))
		}
		m, version = rep.Meta, rep.FormatVersion
		if rep.Summary != nil {
			hasSummary = true
			sum.buckets = int64(rep.Summary.NumBuckets)
			sum.edges = int64(len(rep.Summary.Edges))
			sum.bytes = rep.SummaryBytes
			sum.millis = rep.Summary.BuildMillis
		}
	} else {
		// info: an unverified mmap load (if available) only reads the metadata.
		l, err := snap.LoadFile(path, snap.Options{Mode: snap.ModeAuto})
		if err != nil {
			fatal(fmt.Errorf("info: %w", err))
		}
		defer l.Close()
		m, version = l.Meta, l.FormatVersion
		if l.HasSummary() {
			s := l.Store.Summary() // persisted in the file, not rebuilt
			hasSummary = true
			sum.buckets = int64(s.NumBuckets)
			sum.edges = int64(len(s.Edges))
			sum.bytes = l.SummaryBytes
			sum.millis = s.BuildMillis
		}
		loadedLabel = "copy"
		if l.Mmap {
			loadedLabel = "mmap"
		}
	}
	elapsed := time.Since(start)

	fi, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: store snapshot, format v%d\n", path, version)
	fmt.Printf("  size:     %d bytes\n", fi.Size())
	fmt.Printf("  source:   %s\n", orDash(m.Source))
	if m.CreatedUnix != 0 {
		fmt.Printf("  created:  %s\n", time.Unix(m.CreatedUnix, 0).UTC().Format(time.RFC3339))
	}
	fmt.Printf("  triples:  %d\n", m.Triples)
	fmt.Printf("  terms:    %d\n", m.DictLen)
	fmt.Printf("  ndv1:     spo=%d ops=%d pso=%d pos=%d\n", m.NDV1[0], m.NDV1[1], m.NDV1[2], m.NDV1[3])
	if hasSummary {
		fmt.Printf("  summary:  %d buckets, %d edges, %d bytes, built in %dms\n",
			sum.buckets, sum.edges, sum.bytes, sum.millis)
	} else {
		fmt.Printf("  summary:  none (pre-v2 snapshot; built lazily when the summary estimator is used)\n")
	}
	if verify {
		fmt.Printf("  verified: all checksums and span bounds OK (streamed, %v)\n", elapsed.Round(time.Millisecond))
	} else {
		fmt.Printf("  loaded:   %s in %v (header+table checks only; use verify for checksums)\n",
			loadedLabel, elapsed.Round(time.Millisecond))
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
