// Command kgsnap builds, inspects and verifies store snapshots (.kgs): the
// mmap-ready on-disk form of a fully built index.Store (see internal/snap).
// Building the index once offline and serving it with kgserver -snapshot
// turns startup from an O(n log n) sort-and-build into an O(1) mmap.
//
// Usage:
//
//	kgsnap build -load data.nt -out data.kgs
//	kgsnap build -gen dbpedia -scale 0.1 -out dbpedia.kgs
//	kgsnap info data.kgs
//	kgsnap verify data.kgs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kgexplore"

	"kgexplore/internal/snap"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "info":
		inspect(os.Args[2:], false)
	case "verify":
		inspect(os.Args[2:], true)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  kgsnap build -load FILE | -gen dbpedia|lgd [-scale S]  -out FILE.kgs
  kgsnap info FILE.kgs     # header, metadata and section table
  kgsnap verify FILE.kgs   # full checksum + structural verification
`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kgsnap: %v\n", err)
	os.Exit(1)
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	load := fs.String("load", "", "input dataset (N-Triples, Turtle, .kgx)")
	gen := fs.String("gen", "", "generate a synthetic dataset instead: dbpedia or lgd")
	scale := fs.Float64("scale", 0.05, "scale for -gen")
	out := fs.String("out", "", "output snapshot path (.kgs)")
	fs.Parse(args)
	if *out == "" || (*load == "") == (*gen == "") {
		usage()
	}

	var (
		ds     *kgexplore.Dataset
		source string
		err    error
	)
	start := time.Now()
	switch {
	case *load != "":
		source = *load
		ds, err = kgexplore.LoadFile(*load)
	case *gen == "lgd":
		source = fmt.Sprintf("lgd-sim@%g", *scale)
		ds, err = kgexplore.GenerateLGDSim(*scale)
	case *gen == "dbpedia":
		source = fmt.Sprintf("dbpedia-sim@%g", *scale)
		ds, err = kgexplore.GenerateDBpediaSim(*scale)
	default:
		usage()
	}
	if err != nil {
		fatal(err)
	}
	built := time.Since(start)

	start = time.Now()
	if err := ds.WriteStoreSnapshotFile(*out, source); err != nil {
		fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("kgsnap: %d triples built in %v, %d bytes written to %s in %v\n",
		ds.NumTriples(), built.Round(time.Millisecond), st.Size(), *out,
		time.Since(start).Round(time.Millisecond))
}

func inspect(args []string, verify bool) {
	if len(args) != 1 {
		usage()
	}
	path := args[0]
	start := time.Now()
	// verify: a copy load checks every section checksum and all span bounds.
	// info: an unverified mmap load (if available) only reads the metadata.
	mode, opts := "info", snap.Options{Mode: snap.ModeAuto}
	if verify {
		mode, opts = "verify", snap.Options{Mode: snap.ModeCopy, Verify: true}
	}
	l, err := snap.LoadFile(path, opts)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", mode, err))
	}
	defer l.Close()
	elapsed := time.Since(start)

	fi, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	m := l.Meta
	fmt.Printf("%s: store snapshot, format v%d\n", path, snap.FormatVersion)
	fmt.Printf("  size:     %d bytes\n", fi.Size())
	fmt.Printf("  source:   %s\n", orDash(m.Source))
	if m.CreatedUnix != 0 {
		fmt.Printf("  created:  %s\n", time.Unix(m.CreatedUnix, 0).UTC().Format(time.RFC3339))
	}
	fmt.Printf("  triples:  %d\n", m.Triples)
	fmt.Printf("  terms:    %d\n", m.DictLen)
	fmt.Printf("  ndv1:     spo=%d ops=%d pso=%d pos=%d\n", m.NDV1[0], m.NDV1[1], m.NDV1[2], m.NDV1[3])
	if verify {
		fmt.Printf("  verified: all checksums and span bounds OK (%v)\n", elapsed.Round(time.Millisecond))
	} else {
		kind := "copy"
		if l.Mmap {
			kind = "mmap"
		}
		fmt.Printf("  loaded:   %s in %v (header+table checks only; use verify for checksums)\n",
			kind, elapsed.Round(time.Millisecond))
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
