package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"

	"kgexplore/internal/card"
	"kgexplore/internal/core"
	"kgexplore/internal/ctj"
	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/query"
	"kgexplore/internal/workload"
)

// estBenchQuery is one workload query's row in BENCH_estimate.json: how well
// each estimator predicted the exact join size (q-error), and how many Audit
// Join walks each needed to reach the target confidence interval.
type estBenchQuery struct {
	Path     int     `json:"path"`
	Step     int     `json:"step"`
	Patterns int     `json:"patterns"`
	Exact    float64 `json:"exact"`

	SpanEstimate    float64 `json:"span_estimate"`
	SummaryEstimate float64 `json:"summary_estimate"`
	SpanQError      float64 `json:"span_q_error"`
	SummaryQError   float64 `json:"summary_q_error"`

	// Walks until every group's 0.95 CI half-width fell under relTarget of
	// its estimate (0 when the budget walk cap was hit first).
	SpanWalks    int64 `json:"span_walks_to_ci"`
	SummaryWalks int64 `json:"summary_walks_to_ci"`
}

// estBenchReport is the BENCH_estimate.json schema. Committed as a baseline:
// the summary estimator must hold median q-error at or below span statistics
// on the multi-pattern workload, without regressing walks-to-target-CI.
type estBenchReport struct {
	Dataset      string  `json:"dataset"`
	Scale        float64 `json:"scale"`
	Triples      int     `json:"triples"`
	Seed         int64   `json:"seed"`
	Paths        int     `json:"paths"`
	RelCI        float64 `json:"rel_ci_target"`
	MaxWalks     int64   `json:"max_walks"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	GoVersion    string  `json:"go_version"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`

	Queries      []estBenchQuery `json:"queries"`
	MultiPattern int             `json:"multi_pattern_queries"`

	// Medians over the multi-pattern subset (single patterns are exact span
	// lookups under both estimators and carry no signal).
	SpanMedianQError    float64 `json:"span_median_q_error"`
	SummaryMedianQError float64 `json:"summary_median_q_error"`
	SpanMedianWalks     float64 `json:"span_median_walks_to_ci"`
	SummaryMedianWalks  float64 `json:"summary_median_walks_to_ci"`
}

func estQErr(est, actual float64) float64 {
	if est <= 0 || actual <= 0 {
		return math.Inf(1)
	}
	return math.Max(est/actual, actual/est)
}

func estMedian(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// estWalksToCI steps an Audit Join runner until every group's CI half-width
// is within rel of its estimate (tipped-exact groups report CI 0), returning
// the walk count; 0 when maxWalks walks were not enough.
func estWalksToCI(st *index.Store, pl *query.Plan, est card.Estimator, seed int64, rel float64, maxWalks int64) int64 {
	r := core.New(st, pl, core.Options{Threshold: core.DefaultThreshold, Seed: seed, Estimator: est})
	const batch = 64
	for r.Walks() < maxWalks {
		for i := 0; i < batch; i++ {
			r.Step()
		}
		snap := r.Snapshot()
		if len(snap.Estimates) == 0 {
			continue
		}
		ok := true
		for g, e := range snap.Estimates {
			if e <= 0 {
				continue
			}
			if snap.CI[g] > rel*e {
				ok = false
				break
			}
		}
		if ok {
			return r.Walks()
		}
	}
	return 0
}

// runEstBench generates the exploration workload over dbpedia-sim, scores
// both cardinality estimators' join-size predictions against exact CTJ
// counts, measures walks-to-target-CI per estimator, and writes the report.
func runEstBench(w io.Writer, outPath string, scale float64, seed int64, paths int) error {
	cfg := kggen.DBpediaSim(scale)
	g, schema, err := kggen.Generate(cfg)
	if err != nil {
		return err
	}
	st := index.Build(g)
	gen := &workload.Generator{Store: st, Schema: schema, Seed: seed, MaxSteps: 4}
	recs := gen.Paths(paths)

	const relCI = 0.10
	const maxWalks = 50000
	report := estBenchReport{
		Dataset:    cfg.Name,
		Scale:      scale,
		Triples:    g.Len(),
		Seed:       seed,
		Paths:      paths,
		RelCI:      relCI,
		MaxWalks:   maxWalks,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	span := card.NewSpanStats(st)
	summary := card.NewGraphSummary(st)
	var spanQ, sumQ, spanW, sumW []float64
	for _, r := range recs {
		exact := float64(ctj.Count(st, r.Plan))
		if exact == 0 {
			continue
		}
		row := estBenchQuery{
			Path:            r.Path,
			Step:            r.Step,
			Patterns:        len(r.Plan.Steps),
			Exact:           exact,
			SpanEstimate:    span.JoinSize(r.Plan).Value,
			SummaryEstimate: summary.JoinSize(r.Plan).Value,
		}
		row.SpanQError = estQErr(row.SpanEstimate, exact)
		row.SummaryQError = estQErr(row.SummaryEstimate, exact)
		row.SpanWalks = estWalksToCI(st, r.Plan, span, seed, relCI, maxWalks)
		row.SummaryWalks = estWalksToCI(st, r.Plan, summary, seed, relCI, maxWalks)
		report.Queries = append(report.Queries, row)
		if row.Patterns < 2 {
			continue
		}
		report.MultiPattern++
		spanQ = append(spanQ, row.SpanQError)
		sumQ = append(sumQ, row.SummaryQError)
		if row.SpanWalks > 0 {
			spanW = append(spanW, float64(row.SpanWalks))
		}
		if row.SummaryWalks > 0 {
			sumW = append(sumW, float64(row.SummaryWalks))
		}
	}
	report.SpanMedianQError = estMedian(spanQ)
	report.SummaryMedianQError = estMedian(sumQ)
	report.SpanMedianWalks = estMedian(spanW)
	report.SummaryMedianWalks = estMedian(sumW)

	fmt.Fprintf(w, "estimator benchmark: %d queries (%d multi-pattern) over %s scale %g\n",
		len(report.Queries), report.MultiPattern, cfg.Name, scale)
	fmt.Fprintf(w, "%-10s %18s %22s\n", "estimator", "median q-error", "median walks-to-CI")
	fmt.Fprintf(w, "%-10s %18.3f %22.0f\n", "span", report.SpanMedianQError, report.SpanMedianWalks)
	fmt.Fprintf(w, "%-10s %18.3f %22.0f\n", "summary", report.SummaryMedianQError, report.SummaryMedianWalks)
	if report.MultiPattern > 0 && report.SummaryMedianQError > report.SpanMedianQError {
		fmt.Fprintf(w, "WARNING: summary median q-error exceeds span on the multi-pattern workload\n")
	}

	report.PeakRSSBytes = peakRSSBytes()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}
