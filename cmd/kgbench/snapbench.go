package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/snap"
)

// snapBenchResult is one startup-path measurement of BENCH_startup.json.
type snapBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// snapBenchReport is the BENCH_startup.json schema: how fast a ready-to-query
// store materializes from scratch (index.Build) versus from a snapshot (copy
// load, mmap load). Committed as a baseline so regressions show up in review
// diffs.
type snapBenchReport struct {
	Dataset       string            `json:"dataset"`
	Scale         float64           `json:"scale"`
	Triples       int               `json:"triples"`
	SnapshotBytes int64             `json:"snapshot_bytes"`
	GoMaxProcs    int               `json:"gomaxprocs"`
	GoVersion     string            `json:"go_version"`
	PeakRSSBytes  int64             `json:"peak_rss_bytes"`
	Results       []snapBenchResult `json:"results"`
	// CopyLoadSpeedup and MmapLoadSpeedup are IndexBuild time over load
	// time: how many times faster a server reaches ready via each snapshot
	// path.
	CopyLoadSpeedup float64 `json:"copy_load_speedup"`
	MmapLoadSpeedup float64 `json:"mmap_load_speedup"`
}

// runSnapBench measures the three ways to materialize a queryable store —
// building from the graph, copy-loading a snapshot, and mmap'ing one — plus
// the snapshot write, and records the load speedups over the build baseline.
func runSnapBench(w io.Writer, outPath string, scale float64) error {
	cfg := kggen.DBpediaSim(scale)
	g, _, err := kggen.Generate(cfg)
	if err != nil {
		return err
	}
	st := index.Build(g)
	dir, err := os.MkdirTemp("", "kgsnapbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "store.kgs")
	if err := snap.WriteFile(path, st, &snap.Meta{Source: cfg.Name}); err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	report := snapBenchReport{
		Dataset:       cfg.Name,
		Scale:         scale,
		Triples:       g.Len(),
		SnapshotBytes: fi.Size(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		GoVersion:     runtime.Version(),
	}

	record := func(name string, fn func(b *testing.B)) float64 {
		r := testing.Benchmark(fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		report.Results = append(report.Results, snapBenchResult{
			Name:        name,
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(w, "%-24s %14.1f ns/op %8d B/op %6d allocs/op\n",
			name, ns, r.AllocedBytesPerOp(), r.AllocsPerOp())
		return ns
	}

	buildNs := record("IndexBuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			index.Build(g)
		}
	})
	record("SnapshotWrite", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := snap.WriteFile(path, st, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	copyNs := record("SnapshotCopyLoad", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l, err := snap.LoadFile(path, snap.Options{Mode: snap.ModeCopy})
			if err != nil {
				b.Fatal(err)
			}
			l.Close()
		}
	})
	mmapNs := record("SnapshotMmapLoad", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l, err := snap.LoadFile(path, snap.Options{Mode: snap.ModeAuto})
			if err != nil {
				b.Fatal(err)
			}
			l.Close()
		}
	})

	report.CopyLoadSpeedup = buildNs / copyNs
	report.MmapLoadSpeedup = buildNs / mmapNs
	fmt.Fprintf(w, "startup speedup over IndexBuild: copy %.1fx, mmap %.1fx\n",
		report.CopyLoadSpeedup, report.MmapLoadSpeedup)

	report.PeakRSSBytes = peakRSSBytes()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%s scale %g, %d triples, %d snapshot bytes)\n",
		outPath, cfg.Name, scale, g.Len(), fi.Size())
	return nil
}
