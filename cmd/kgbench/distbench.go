package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	oexec "os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"kgexplore/internal/dist"
	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/shard"
	"kgexplore/internal/wj"
)

// distBenchRow is one fleet-width measurement: a fixed-budget scatter run's
// walk throughput over N kgworker processes, the walks needed to shrink the
// mean relative CI to the target, the estimate's error against the exact
// answer, and the wire traffic the run cost.
type distBenchRow struct {
	Workers         int     `json:"workers"`
	Walks           int64   `json:"walks"`
	ElapsedNs       int64   `json:"elapsed_ns"`
	WalksPerSec     float64 `json:"walks_per_sec"`
	WalksToTargetCI int64   `json:"walks_to_target_ci"`
	MeanRelErr      float64 `json:"mean_rel_err"`
	WireInBytes     int64   `json:"wire_in_bytes"`
	WireOutBytes    int64   `json:"wire_out_bytes"`
	Retries         int     `json:"retries,omitempty"`
}

// distBenchReport is the BENCH_dist.json schema: the fixture, the in-process
// scatter baseline, the per-fleet-width grid, and the headline ratios.
type distBenchReport struct {
	Dataset      string  `json:"dataset"`
	Scale        float64 `json:"scale"`
	Triples      int     `json:"triples"`
	Shards       int     `json:"shards"`
	Walks        int64   `json:"walks"`
	Seed         int64   `json:"seed"`
	TargetCI     float64 `json:"target_ci"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"numcpu"`
	GoVersion    string  `json:"go_version"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`
	// Baseline is the same run executed by in-process shard.RunScatter —
	// identical seeds and allocation math, so its walk counts match the
	// distributed rows and the delta is pure wire overhead.
	Baseline distBenchRow   `json:"baseline"`
	Rows     []distBenchRow `json:"rows"`
	// ThroughputRatio2v1 = walks/sec with 2 workers over 1 worker: >1 means
	// the fleet turned processes into parallel walk throughput.
	ThroughputRatio2v1 float64 `json:"throughput_ratio_2_vs_1"`
	// DistVsLocal = walks/sec of the widest fleet over the in-process
	// baseline: the price (or win) of going over the wire.
	DistVsLocal float64 `json:"dist_vs_local_ratio"`
	// CPULimited flags runs where the machine cannot actually run a
	// 2-worker fleet plus the coordinator in parallel: the processes
	// time-slice, so the 1→2 ratio measures scheduling overhead, not
	// scaling.
	CPULimited bool `json:"cpu_limited,omitempty"`
}

// workerProc is one spawned kgworker process and its scraped listen address.
type workerProc struct {
	cmd  *oexec.Cmd
	addr string
}

func (p *workerProc) stop() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
	p.cmd.Wait()
}

// spawnWorker starts one kgworker on a free port and scrapes the
// machine-readable "kgworker: listening on ADDR" line from its stdout.
func spawnWorker(bin, manifest string, shardN int) (*workerProc, error) {
	cmd := oexec.Command(bin,
		"-manifest", manifest,
		"-shard", strconv.Itoa(shardN),
		"-addr", "127.0.0.1:0")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &workerProc{cmd: cmd}
	lines := bufio.NewScanner(out)
	for lines.Scan() {
		if addr, ok := strings.CutPrefix(lines.Text(), "kgworker: listening on "); ok {
			p.addr = strings.TrimSpace(addr)
			break
		}
	}
	if p.addr == "" {
		p.stop()
		return nil, fmt.Errorf("distbench: kgworker exited without announcing its address")
	}
	go io.Copy(io.Discard, out) // keep draining so the worker never blocks on stdout
	return p, nil
}

// buildWorkerBin compiles cmd/kgworker into dir and returns the binary path.
// The package path form works from any working directory inside the module.
func buildWorkerBin(dir string) (string, error) {
	bin := filepath.Join(dir, "kgworker")
	cmd := oexec.Command("go", "build", "-o", bin, "kgexplore/cmd/kgworker")
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("distbench: building kgworker (pass a prebuilt binary with -distworker): %w", err)
	}
	return bin, nil
}

// meanRelCI returns the mean CI half-width relative to the estimate across
// groups, or +Inf before any group has a usable estimate.
func meanRelCI(res wj.Result) float64 {
	var sum float64
	var n int
	for a, est := range res.Estimates {
		if est <= 0 {
			continue
		}
		sum += res.CI[a] / est
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// walksToTargetCI drives run with progressive snapshots until the mean
// relative CI half-width reaches target, and returns the walk count at that
// snapshot (or the final walk count if the budget expires first).
func walksToTargetCI(run func(exec.Options) (wj.Result, error), target float64) (int64, error) {
	at := int64(-1)
	res, err := run(exec.Options{
		Budget:   8 * time.Second,
		Interval: 20 * time.Millisecond,
		Batch:    128,
		OnSnapshot: func(p exec.Progress) bool {
			if at < 0 && p.Snapshot.Walks > 0 && meanRelCI(p.Snapshot) <= target {
				at = p.Snapshot.Walks
				return false
			}
			return true
		},
	})
	if at >= 0 {
		return at, nil // the early stop may surface as a suppressed cancel; the target was reached
	}
	if err != nil {
		return 0, err
	}
	return res.Walks, nil
}

func meanRelErr(est map[rdf.ID]float64, exact map[rdf.ID]int64) float64 {
	var sum float64
	var n int
	for a, ex := range exact {
		if ex == 0 {
			continue
		}
		sum += math.Abs(est[a]-float64(ex)) / float64(ex)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// runDistBench measures distributed scatter-gather Audit Join over fleets of
// 1, 2 and 4 kgworker processes against the in-process scatter baseline on
// the same 4-shard DBpedia-sim set: fixed-budget walk throughput,
// walks-to-target-CI, estimate error, and wire bytes. Seeds and allocation
// match shard.RunScatter, so the distributed estimates are the baseline's
// estimates and the throughput delta isolates the wire.
func runDistBench(w io.Writer, outPath string, scale float64, seed, walks int64, workerBin string) error {
	const shards = 4
	const targetCI = 0.5

	cfg := kggen.DBpediaSim(scale)
	g, _, err := kggen.Generate(cfg)
	if err != nil {
		return err
	}
	pl, exact := shardChainPlan(g, index.Build(g))
	if pl == nil {
		return fmt.Errorf("distbench: no chain plan with a non-empty answer at scale %g", scale)
	}
	part, err := shard.PartitionerByName("")
	if err != nil {
		return err
	}
	set, err := shard.Build(g, shards, part)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "kgdistbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	manifest := filepath.Join(dir, "set.kgm")
	if _, err := shard.WriteSet(manifest, set, cfg.Name); err != nil {
		return err
	}

	report := distBenchReport{
		Dataset:    cfg.Name,
		Scale:      scale,
		Triples:    g.Len(),
		Shards:     shards,
		Walks:      walks,
		Seed:       seed,
		TargetCI:   targetCI,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	fmt.Fprintf(w, "distbench: %s scale %g, %d triples in %d shards, %d walks, %d groups exact\n",
		cfg.Name, scale, g.Len(), shards, walks, len(exact))

	// In-process baseline: same set, same plan, same seed.
	start := time.Now()
	res, _, err := shard.RunScatter(context.Background(), set, pl,
		shard.ScatterOptions{Seed: seed}, exec.Options{MaxWalks: walks, Batch: 256})
	if err != nil {
		return err
	}
	base := distBenchRow{
		Workers:    0,
		Walks:      res.Walks,
		ElapsedNs:  time.Since(start).Nanoseconds(),
		MeanRelErr: meanRelErr(res.Estimates, exact),
	}
	base.WalksPerSec = float64(base.Walks) / (float64(base.ElapsedNs) / 1e9)
	base.WalksToTargetCI, err = walksToTargetCI(func(xopts exec.Options) (wj.Result, error) {
		r, _, err := shard.RunScatter(context.Background(), set, pl,
			shard.ScatterOptions{Seed: seed}, xopts)
		return r, err
	}, targetCI)
	if err != nil {
		return err
	}
	report.Baseline = base
	fmt.Fprintf(w, "  in-process %10.0f walks/s  %7d walks to CI<=%.2f  mean rel err %.4f\n",
		base.WalksPerSec, base.WalksToTargetCI, targetCI, base.MeanRelErr)

	if workerBin == "" {
		if workerBin, err = buildWorkerBin(dir); err != nil {
			return err
		}
	}

	for _, n := range []int{1, 2, 4} {
		row, err := runDistFleet(workerBin, manifest, shards, n, pl, exact, seed, walks, targetCI)
		if err != nil {
			return err
		}
		report.Rows = append(report.Rows, row)
		fmt.Fprintf(w, "  N=%d workers %10.0f walks/s  %7d walks to CI<=%.2f  mean rel err %.4f  wire %d/%d B in/out\n",
			n, row.WalksPerSec, row.WalksToTargetCI, targetCI, row.MeanRelErr, row.WireInBytes, row.WireOutBytes)
	}

	if r1 := report.Rows[0].WalksPerSec; r1 > 0 {
		report.ThroughputRatio2v1 = report.Rows[1].WalksPerSec / r1
	}
	if report.Baseline.WalksPerSec > 0 {
		report.DistVsLocal = report.Rows[len(report.Rows)-1].WalksPerSec / report.Baseline.WalksPerSec
	}
	report.CPULimited = report.NumCPU < 3 // 2 workers + coordinator need 3 runnable threads
	fmt.Fprintf(w, "  2 workers vs 1: throughput ratio %.2fx; widest fleet vs in-process: %.2fx\n",
		report.ThroughputRatio2v1, report.DistVsLocal)
	if report.CPULimited {
		fmt.Fprintf(w, "  note: %d CPUs < 3, worker processes time-slice; ratios are not parallel speedups\n",
			report.NumCPU)
	}

	report.PeakRSSBytes = peakRSSBytes()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}

// runDistFleet spawns n kgworker processes over the manifest, runs the
// fixed-budget scatter and the walks-to-target-CI run through a fresh
// coordinator, and tears the fleet down.
func runDistFleet(bin, manifest string, shards, n int, pl *query.Plan, exact map[rdf.ID]int64, seed, walks int64, targetCI float64) (distBenchRow, error) {
	row := distBenchRow{Workers: n}
	procs := make([]*workerProc, 0, n)
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		p, err := spawnWorker(bin, manifest, i%shards)
		if err != nil {
			return row, err
		}
		procs = append(procs, p)
		addrs = append(addrs, p.addr)
	}
	co, err := dist.Dial(context.Background(), addrs)
	if err != nil {
		return row, err
	}

	start := time.Now()
	res, rstats, err := co.Run(context.Background(), pl.Query,
		dist.RunOptions{Seed: seed}, exec.Options{MaxWalks: walks, Batch: 256})
	if err != nil {
		return row, err
	}
	row.ElapsedNs = time.Since(start).Nanoseconds()
	row.Walks = res.Walks
	row.WalksPerSec = float64(res.Walks) / (float64(row.ElapsedNs) / 1e9)
	row.MeanRelErr = meanRelErr(res.Estimates, exact)
	row.WireInBytes = rstats.WireInBytes
	row.WireOutBytes = rstats.WireOutBytes
	row.Retries = rstats.Retries

	row.WalksToTargetCI, err = walksToTargetCI(func(xopts exec.Options) (wj.Result, error) {
		r, _, err := co.Run(context.Background(), pl.Query, dist.RunOptions{Seed: seed}, xopts)
		return r, err
	}, targetCI)
	return row, err
}
