package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"

	"kgexplore/internal/card"
	"kgexplore/internal/core"
	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/wj"
	"kgexplore/internal/workload"
)

// surfaceBenchRow is one extended-surface query's row in BENCH_surface.json:
// how fast the online estimator converged on the filtered/union/path query
// and how close it landed to the exact answer. DISTINCT unions have no
// estimator (their cross-branch overlap is unobservable per branch) and
// report only the exact side with estimated=false.
type surfaceBenchRow struct {
	Kind     string `json:"kind"` // filter | union | path
	Patterns int    `json:"patterns"`
	Branches int    `json:"branches,omitempty"`
	Distinct bool   `json:"distinct,omitempty"`
	Groups   int    `json:"groups"`

	ExactTotal float64 `json:"exact_total"`
	Estimated  bool    `json:"estimated"`
	EstTotal   float64 `json:"est_total,omitempty"`
	RelErr     float64 `json:"rel_err,omitempty"`
	// Walks until every group's 0.95 CI half-width fell under the relative
	// target (0 when the walk cap was hit first).
	WalksToCI    int64   `json:"walks_to_ci,omitempty"`
	RejectedFrac float64 `json:"rejected_frac,omitempty"`
}

// surfaceBenchReport is the BENCH_surface.json schema, committed as the CI
// baseline for the wider query surface: per-kind convergence and accuracy
// of online aggregation over FILTER, UNION and path-chain queries must not
// regress as the engines evolve.
type surfaceBenchReport struct {
	Dataset      string  `json:"dataset"`
	Scale        float64 `json:"scale"`
	Triples      int     `json:"triples"`
	Seed         int64   `json:"seed"`
	RelCI        float64 `json:"rel_ci_target"`
	MaxWalks     int64   `json:"max_walks"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	GoVersion    string  `json:"go_version"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`

	Rows []surfaceBenchRow `json:"rows"`

	FilterQueries int `json:"filter_queries"`
	UnionQueries  int `json:"union_queries"`
	PathQueries   int `json:"path_queries"`

	FilterMedianRelErr float64 `json:"filter_median_rel_err"`
	UnionMedianRelErr  float64 `json:"union_median_rel_err"`
	PathMedianRelErr   float64 `json:"path_median_rel_err"`
	MedianWalksToCI    float64 `json:"median_walks_to_ci"`

	// Every estimated row landed within 50% of exact — the coarse unbiasedness
	// gate (rel errors past it mean a wiring bug, not sampling noise).
	EquivalenceOK bool `json:"equivalence_ok"`
}

// surfaceStepper is the slice of exec.Stepper the bench drives: single-plan
// core runners and stratified union estimators both satisfy it.
type surfaceStepper interface {
	Step()
	Walks() int64
	Snapshot() wj.Result
}

// surfaceRun steps the estimator until every group's CI half-width is
// within rel of its estimate, up to maxWalks, and returns the final
// snapshot plus the walks-to-CI count (0 when the cap hit first).
func surfaceRun(s surfaceStepper, rel float64, maxWalks int64) (wj.Result, int64) {
	const batch = 64
	for s.Walks() < maxWalks {
		for i := 0; i < batch; i++ {
			s.Step()
		}
		snap := s.Snapshot()
		if len(snap.Estimates) == 0 {
			continue
		}
		ok := true
		for g, e := range snap.Estimates {
			if e <= 0 {
				continue
			}
			if snap.CI[g] > rel*e {
				ok = false
				break
			}
		}
		if ok {
			return snap, s.Walks()
		}
	}
	return s.Snapshot(), 0
}

// runSurfaceBench generates the extended-surface workload (FILTER, UNION,
// path chains) over dbpedia-sim, measures the online estimators'
// walks-to-target-CI and accuracy against exact CTJ ground truth, and
// writes the report.
func runSurfaceBench(w io.Writer, outPath string, scale float64, seed int64, n int) error {
	cfg := kggen.DBpediaSim(scale)
	g, schema, err := kggen.Generate(cfg)
	if err != nil {
		return err
	}
	st := index.Build(g)
	gen := &workload.Generator{Store: st, Schema: schema, Seed: seed, MaxSteps: 3}
	recs := gen.Surface(n)
	if len(recs) == 0 {
		return fmt.Errorf("surfacebench: workload produced no queries at scale %g", scale)
	}

	const relCI = 0.10
	const maxWalks = 40000
	report := surfaceBenchReport{
		Dataset:    cfg.Name,
		Scale:      scale,
		Triples:    g.Len(),
		Seed:       seed,
		RelCI:      relCI,
		MaxWalks:   maxWalks,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	span := card.NewSpanStats(st)
	var relByKind = map[workload.SurfaceKind][]float64{}
	var walksAll []float64
	equivalenceOK := true
	for _, r := range recs {
		row := surfaceBenchRow{
			Kind:     string(r.Kind),
			Distinct: r.Distinct(),
			Groups:   len(r.Exact),
		}
		for _, c := range r.Exact {
			row.ExactTotal += c
		}

		var stepper surfaceStepper
		if r.Union != nil {
			row.Branches = len(r.Union.Branches)
			for _, pl := range r.UnionPlan.Plans {
				row.Patterns += len(pl.Steps)
			}
			if !r.Distinct() {
				branches := make([]exec.AccStepper, len(r.UnionPlan.Plans))
				weights := make([]float64, len(r.UnionPlan.Plans))
				for i, pl := range r.UnionPlan.Plans {
					branches[i] = core.New(st, pl, core.Options{
						Threshold: core.DefaultThreshold,
						Seed:      seed + int64(i)*1_000_003,
						Estimator: span,
					})
					weights[i] = span.JoinSize(pl).Value
				}
				stepper = exec.NewUnion(branches, weights)
			}
		} else {
			row.Patterns = len(r.Plan.Steps)
			stepper = core.New(st, r.Plan, core.Options{
				Threshold: core.DefaultThreshold,
				Seed:      seed,
				Estimator: span,
			})
		}

		if stepper != nil {
			snap, walks := surfaceRun(stepper, relCI, maxWalks)
			row.Estimated = true
			row.WalksToCI = walks
			row.RejectedFrac = snap.RejectionRate()
			for _, e := range snap.Estimates {
				row.EstTotal += e
			}
			if row.ExactTotal > 0 {
				row.RelErr = math.Abs(row.EstTotal-row.ExactTotal) / row.ExactTotal
			}
			relByKind[r.Kind] = append(relByKind[r.Kind], row.RelErr)
			if walks > 0 {
				walksAll = append(walksAll, float64(walks))
			}
			if row.RelErr > 0.5 {
				equivalenceOK = false
			}
		}
		report.Rows = append(report.Rows, row)
		switch r.Kind {
		case workload.SurfaceFilter:
			report.FilterQueries++
		case workload.SurfaceUnion:
			report.UnionQueries++
		case workload.SurfacePath:
			report.PathQueries++
		}
	}

	report.FilterMedianRelErr = estMedian(relByKind[workload.SurfaceFilter])
	report.UnionMedianRelErr = estMedian(relByKind[workload.SurfaceUnion])
	report.PathMedianRelErr = estMedian(relByKind[workload.SurfacePath])
	report.MedianWalksToCI = estMedian(walksAll)
	report.EquivalenceOK = equivalenceOK

	fmt.Fprintf(w, "surface benchmark: %d queries (%d filter, %d union, %d path) over %s scale %g\n",
		len(report.Rows), report.FilterQueries, report.UnionQueries, report.PathQueries, cfg.Name, scale)
	fmt.Fprintf(w, "%-8s %16s\n", "kind", "median rel err")
	fmt.Fprintf(w, "%-8s %16.3f\n", "filter", report.FilterMedianRelErr)
	fmt.Fprintf(w, "%-8s %16.3f\n", "union", report.UnionMedianRelErr)
	fmt.Fprintf(w, "%-8s %16.3f\n", "path", report.PathMedianRelErr)
	fmt.Fprintf(w, "median walks-to-CI: %.0f   equivalence_ok: %v\n",
		report.MedianWalksToCI, report.EquivalenceOK)
	if !equivalenceOK {
		fmt.Fprintf(w, "WARNING: an estimated surface query landed >50%% from exact\n")
	}

	report.PeakRSSBytes = peakRSSBytes()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}
