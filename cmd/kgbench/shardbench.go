package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/shard"
)

// shardBenchRow is one shard-count measurement: partition+build cost, walk
// throughput of a full-width scatter-gather run, and the merged estimate's
// error against the exact answer.
type shardBenchRow struct {
	Shards       int     `json:"shards"`
	BuildNs      int64   `json:"build_ns"`
	Walks        int64   `json:"walks"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	WalksPerSec  float64 `json:"walks_per_sec"`
	MeanRelErr   float64 `json:"mean_rel_err"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	MinRootShare float64 `json:"min_root_share"` // smallest stratum's root fraction
}

// shardBenchReport is the BENCH_shard.json schema: the fixture, the per-K
// grid, and the headline throughput ratio of the widest configuration over
// a single shard.
type shardBenchReport struct {
	Dataset      string          `json:"dataset"`
	Scale        float64         `json:"scale"`
	Triples      int             `json:"triples"`
	Walks        int64           `json:"walks"`
	Seed         int64           `json:"seed"`
	GoMaxProcs   int             `json:"gomaxprocs"`
	GoVersion    string          `json:"go_version"`
	PeakRSSBytes int64           `json:"peak_rss_bytes"`
	Rows         []shardBenchRow `json:"rows"`
	// ThroughputRatio8 = walks/sec at 8 shards over 1 shard: >1 means
	// scatter-gather turned the shard count into parallel walk throughput.
	ThroughputRatio8 float64 `json:"throughput_ratio_8_vs_1"`
	// CPULimited flags runs where GOMAXPROCS is below the widest shard
	// count: the per-shard pools time-slice one core, so the ratio measures
	// scatter overhead plus smaller-store locality, not parallel speedup.
	CPULimited bool `json:"cpu_limited,omitempty"`
}

// shardChainPlan builds the grouped chain ?s p1 ?m . ?m p2 ?a COUNT GROUP
// BY ?a — a join whose root spans every shard, so the allocation rule and
// the resolver both matter. Dense predicate pairs are tried in order until
// one composes to a non-empty exact answer on st; that answer is returned
// alongside the plan so the caller does not recompute it.
func shardChainPlan(g *rdf.Graph, st *index.Store) (*query.Plan, map[rdf.ID]int64) {
	counts := map[rdf.ID]int{}
	for _, tr := range g.Triples {
		counts[tr.P]++
	}
	preds := make([]rdf.ID, 0, len(counts))
	for p := range counts {
		preds = append(preds, p)
	}
	sort.Slice(preds, func(i, j int) bool {
		if counts[preds[i]] != counts[preds[j]] {
			return counts[preds[i]] > counts[preds[j]]
		}
		return preds[i] < preds[j]
	})
	if len(preds) > 8 {
		preds = preds[:8]
	}
	for _, p1 := range preds {
		for _, p2 := range preds {
			q := &query.Query{
				Alpha: 2,
				Beta:  0,
				Patterns: []query.Pattern{
					{S: query.V(0), P: query.C(p1), O: query.V(1)},
					{S: query.V(1), P: query.C(p2), O: query.V(2)},
				},
			}
			pl, err := query.Compile(q)
			if err != nil {
				continue
			}
			if exact := lftj.GroupCount(st, pl); len(exact) > 0 {
				return pl, exact
			}
		}
	}
	return nil, nil
}

// runShardBench measures sharded scatter-gather Audit Join at 1/2/4/8
// shards on a DBpedia-sim fixture: shard build time, walk throughput with
// one worker per shard, and the merged grouped-COUNT estimate's mean
// relative error against the exact LFTJ answer. Throughput should grow with
// the shard count (walkers run in parallel, one pool per stratum) while the
// error stays flat — stratification changes the variance bookkeeping, not
// the estimator's accuracy.
func runShardBench(w io.Writer, outPath string, scale float64, seed, walks int64) error {
	cfg := kggen.DBpediaSim(scale)
	g, _, err := kggen.Generate(cfg)
	if err != nil {
		return err
	}
	pl, exact := shardChainPlan(g, index.Build(g))
	if pl == nil {
		return fmt.Errorf("shardbench: no chain plan with a non-empty answer at scale %g", scale)
	}

	report := shardBenchReport{
		Dataset:    cfg.Name,
		Scale:      scale,
		Triples:    g.Len(),
		Walks:      walks,
		Seed:       seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	part, err := shard.PartitionerByName("")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "shardbench: %s scale %g, %d triples, %d total walks, %d groups exact\n",
		cfg.Name, scale, g.Len(), walks, len(exact))
	for _, k := range []int{1, 2, 4, 8} {
		start := time.Now()
		set, err := shard.Build(g, k, part)
		if err != nil {
			return err
		}
		row := shardBenchRow{Shards: k, BuildNs: time.Since(start).Nanoseconds()}

		start = time.Now()
		res, sstats, err := shard.RunScatter(context.Background(), set, pl,
			shard.ScatterOptions{Seed: seed},
			exec.Options{MaxWalks: walks, Batch: 256})
		if err != nil {
			return err
		}
		row.ElapsedNs = time.Since(start).Nanoseconds()
		row.Walks = res.Walks
		row.WalksPerSec = float64(res.Walks) / (float64(row.ElapsedNs) / 1e9)
		row.CacheHits = sstats.Cache.Hits
		row.CacheMisses = sstats.Cache.Misses

		totalRoot := 0
		minRoot := math.MaxInt
		for _, ps := range sstats.PerShard {
			totalRoot += ps.RootCard
			if ps.RootCard < minRoot {
				minRoot = ps.RootCard
			}
		}
		if totalRoot > 0 {
			row.MinRootShare = float64(minRoot) / float64(totalRoot)
		}

		var errSum float64
		var n int
		for a, ex := range exact {
			if ex == 0 {
				continue
			}
			errSum += math.Abs(res.Estimates[a]-float64(ex)) / float64(ex)
			n++
		}
		if n > 0 {
			row.MeanRelErr = errSum / float64(n)
		}
		report.Rows = append(report.Rows, row)
		fmt.Fprintf(w, "  K=%d build %6.1fms  %10.0f walks/s  mean rel err %.4f  cache %d/%d hit/miss\n",
			k, float64(row.BuildNs)/1e6, row.WalksPerSec, row.MeanRelErr, row.CacheHits, row.CacheMisses)
	}

	if first := report.Rows[0].WalksPerSec; first > 0 {
		report.ThroughputRatio8 = report.Rows[len(report.Rows)-1].WalksPerSec / first
	}
	report.CPULimited = report.GoMaxProcs < report.Rows[len(report.Rows)-1].Shards
	fmt.Fprintf(w, "  8 shards vs 1: throughput ratio %.2fx\n", report.ThroughputRatio8)
	if report.CPULimited {
		fmt.Fprintf(w, "  note: GOMAXPROCS=%d < 8, pools time-slice; ratio is not a parallel speedup\n",
			report.GoMaxProcs)
	}

	report.PeakRSSBytes = peakRSSBytes()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}
