package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kgexplore/internal/ctj"
	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/live"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/snap"
	"kgexplore/internal/workload"
)

// ingestBenchQuery is one workload query's row in BENCH_ingest.json:
// walks-to-target-CI measured over the merged view WHILE the writer is
// ingesting, plus the end-state equivalence numbers.
type ingestBenchQuery struct {
	Path     int `json:"path"`
	Step     int `json:"step"`
	Patterns int `json:"patterns"`

	// Walks until the global estimate's 0.95 CI half-width fell under the
	// relative target, measured concurrently with ingest; pinned at
	// max_walks when the cap was hit first (so the diff gate sees a
	// monotone "more walks is worse" metric, never a zero sentinel).
	WalksToCI int64 `json:"walks_to_ci"`

	// Exact merged-view answer at the end vs a from-scratch index.Build of
	// the final triple set — must be equal (the unbiasedness ground truth).
	LiveExact    float64 `json:"live_exact"`
	RebuildExact float64 `json:"rebuild_exact"`
}

// ingestBenchReport is the BENCH_ingest.json schema. Committed as a
// baseline: the overlay must sustain concurrent ingest while serving walks
// (no full index rebuild on the write path), with read latency and
// walks-to-CI staying within the regression gate.
type ingestBenchReport struct {
	Dataset      string  `json:"dataset"`
	Scale        float64 `json:"scale"`
	Seed         int64   `json:"seed"`
	BaseTriples  int     `json:"base_triples"`
	StreamAdds   int     `json:"stream_adds"`
	StreamDels   int     `json:"stream_deletes"`
	BatchSize    int     `json:"batch_size"`
	RelCI        float64 `json:"rel_ci_target"`
	MaxWalks     int64   `json:"max_walks"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	GoVersion    string  `json:"go_version"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`

	// Writer side: sustained WAL-logged ingest throughput and the
	// background-compaction tally over the run.
	TotalOps        int64   `json:"total_ops"`
	IngestMillis    int64   `json:"ingest_millis"`
	IngestOpsPerSec float64 `json:"ingest_ops_per_sec"`
	AppliedBatches  int64   `json:"applied_batches"`
	Compactions     int64   `json:"compactions"`
	FinalDeltaAdds  int     `json:"final_delta_adds"`
	FinalTombstones int     `json:"final_tombstones"`
	// Residual WAL records after the run's compaction rewrites —
	// telemetry, not a gated metric (the log shrinks to the residual
	// overlay at every compaction, so its size is run-phase dependent).
	WALRecords int64 `json:"wal_records"`

	// Reader side: one read op = a 64-walk batch plus a snapshot, issued
	// continuously against the live view for the whole ingest window.
	ReadOps       int64   `json:"read_ops"`
	ReadP50Micros float64 `json:"read_p50_micros"`
	ReadP99Micros float64 `json:"read_p99_micros"`

	Queries         []ingestBenchQuery `json:"queries"`
	MedianWalksToCI float64            `json:"median_walks_to_ci"`
	EquivalenceOK   bool               `json:"equivalence_ok"`
}

// ingestReadBatch is the read-op granularity: walks per latency sample.
const ingestReadBatch = 64

func ingestPercentile(micros []float64, p float64) float64 {
	if len(micros) == 0 {
		return 0
	}
	s := append([]float64(nil), micros...)
	sort.Float64s(s)
	i := int(math.Ceil(p*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// runIngestBench measures the live-ingestion subsystem end to end: a writer
// streams held-out triples (plus deletes of base triples) through the
// WAL-logged overlay in batches while a reader continuously runs merged-view
// Audit Join walks; overflow past the overlay threshold triggers background
// compaction through the external builder, exactly like kgserver -live. The
// report records ingest throughput, walks-to-target-CI and read-latency
// percentiles under that sustained interleaving, and closes with an
// equivalence check of the final merged view against a from-scratch rebuild.
func runIngestBench(w io.Writer, outPath string, scale float64, seed int64) error {
	cfg := kggen.DBpediaSim(scale)
	g, schema, err := kggen.Generate(cfg)
	if err != nil {
		return err
	}
	g.Dedup()

	// Hold out 10% of the triples as the add stream; the rest is the base.
	n := g.Len() - g.Len()/10
	base := index.Build(&rdf.Graph{Dict: g.Dict, Triples: g.Triples[:n]})
	adds := g.Triples[n:]

	// Delete 5% of the base (every 20th triple): the tombstone path. The
	// stream interleaves adds and deletes in a seeded shuffle.
	var dels []rdf.Triple
	for i := 0; i < n; i += 20 {
		dels = append(dels, g.Triples[i])
	}
	stream := make([]live.Op, 0, len(adds)+len(dels))
	for _, t := range adds {
		stream = append(stream, live.Op{T: t})
	}
	for _, t := range dels {
		stream = append(stream, live.Op{Del: true, T: t})
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

	// The workload comes from the base store — the queries a user was
	// already exploring when ingest started. Chart queries are grouped
	// COUNT DISTINCT, which the overlay walker routes to the exact path by
	// policy; the walk benchmark drives the estimable total-COUNT form of
	// the same patterns, and convergence targets the global estimate's CI
	// (scalebench's criterion — per-group CIs of one-count bars never
	// tighten relatively).
	gen := &workload.Generator{Store: base, Schema: schema, Seed: seed, MaxSteps: 4}
	var plans []*query.Plan
	var rows []ingestBenchQuery
	for _, r := range gen.Paths(8) {
		if r.Plan.Query.Agg != query.AggCount {
			continue
		}
		nq := *r.Query
		nq.Distinct = false
		nq.Alpha = query.NoVar
		pl, err := query.Compile(&nq)
		if err != nil || ctj.Count(base, pl) == 0 {
			continue
		}
		plans = append(plans, pl)
		rows = append(rows, ingestBenchQuery{Path: r.Path, Step: r.Step, Patterns: len(pl.Steps)})
		if len(plans) == 6 {
			break
		}
	}
	if len(plans) == 0 {
		return fmt.Errorf("ingestbench: workload produced no COUNT queries")
	}

	dir, err := os.MkdirTemp("", "kgbench-ingest")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ls, err := live.NewStore(base, live.Options{WALPath: filepath.Join(dir, "ingest.wal")})
	if err != nil {
		return err
	}
	defer ls.Close()

	const (
		batchSize  = 256
		compactMin = 2000
		relCI      = 0.10
		maxWalks   = 20000
		minWindow  = 2 * time.Second
	)
	report := ingestBenchReport{
		Dataset:     cfg.Name,
		Scale:       scale,
		Seed:        seed,
		BaseTriples: base.NumTriples(),
		StreamAdds:  len(adds),
		StreamDels:  len(dels),
		BatchSize:   batchSize,
		RelCI:       relCI,
		MaxWalks:    maxWalks,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
	}

	// Writer: WAL-logged batches; past the overlay threshold, kick off a
	// background compaction (never blocking ingest — residual batches are
	// reconciled into the fresh base, as in kgserver's compactLoop).
	var (
		ingestDone  atomic.Bool
		compacting  atomic.Bool
		compactWG   sync.WaitGroup
		retiredMu   sync.Mutex
		retired     []io.Closer
		ingestStart = time.Now()
		writerErr   error
	)
	maybeCompact := func(gen uint64) {
		v := ls.View()
		if v.DeltaAdds()+v.Tombstones() < compactMin || !compacting.CompareAndSwap(false, true) {
			return
		}
		compactWG.Add(1)
		go func() {
			defer compactWG.Done()
			defer compacting.Store(false)
			res, err := ls.Compact(filepath.Join(dir, fmt.Sprintf("base-gen%d.kgs", gen)), snap.ExtBuildOptions{})
			if err != nil {
				return // ErrCompacting races are benign; real errors land in ls.LastErr
			}
			if res.Retired != nil {
				retiredMu.Lock()
				retired = append(retired, res.Retired)
				retiredMu.Unlock()
			}
		}()
	}
	// The writer churns for as long as the readers measure: it applies the
	// stream, then its inverse (deleting the adds, restoring the deletes),
	// and repeats — so walks-to-CI is genuinely measured under sustained
	// WAL-logged ingest, however long convergence takes.
	inverse := make([]live.Op, len(stream))
	for i, op := range stream {
		inverse[i] = live.Op{Del: !op.Del, T: op.T}
	}
	var totalOps int64
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for phase := 0; ; phase++ {
			ops := stream
			if phase%2 == 1 {
				ops = inverse
			}
			for off := 0; off < len(ops); off += batchSize {
				if ingestDone.Load() {
					return
				}
				end := off + batchSize
				if end > len(ops) {
					end = len(ops)
				}
				if err := ls.Apply(ops[off:end]); err != nil {
					writerErr = err
					return
				}
				atomic.AddInt64(&totalOps, int64(end-off))
				maybeCompact(ls.View().Gen())
			}
		}
	}()

	// Reader: run each workload query against the CURRENT view while the
	// writer churns, timing every read op and recording walks until the
	// 0.95 CI half-width falls under the relative target.
	var latencies []float64
	var readOps int64
	walksToCI := make([]int64, len(plans))
	readOp := func(lw *live.Walker) bool {
		t0 := time.Now()
		for i := 0; i < ingestReadBatch; i++ {
			lw.Step()
		}
		snapr := lw.Snapshot()
		latencies = append(latencies, float64(time.Since(t0).Microseconds()))
		readOps++
		if len(snapr.Estimates) == 0 {
			return false
		}
		for gid, e := range snapr.Estimates {
			if e > 0 && snapr.CI[gid] > relCI*e {
				return false
			}
		}
		return true
	}
	for qi := range plans {
		lw, err := live.NewWalker(ls.View(), plans[qi], live.WalkerOptions{Seed: seed + int64(qi)})
		if err != nil {
			ingestDone.Store(true)
			return err
		}
		for lw.Walks() < maxWalks {
			if readOp(lw) {
				walksToCI[qi] = lw.Walks()
				break
			}
		}
		if walksToCI[qi] == 0 {
			walksToCI[qi] = maxWalks
		}
	}
	// Keep serving reads against fresh views until the sustained window
	// elapses, so latency percentiles and compaction counts reflect a real
	// concurrent run even when the workload converges quickly.
	for qi := 0; time.Since(ingestStart) < minWindow; qi = (qi + 1) % len(plans) {
		lw, err := live.NewWalker(ls.View(), plans[qi], live.WalkerOptions{Seed: seed + readOps})
		if err != nil {
			ingestDone.Store(true)
			return err
		}
		for k := 0; k < 8 && lw.Walks() < maxWalks; k++ {
			if readOp(lw) {
				break
			}
		}
	}
	ingestDone.Store(true)
	<-writerDone
	compactWG.Wait()
	if writerErr != nil {
		return writerErr
	}
	report.TotalOps = atomic.LoadInt64(&totalOps)
	report.IngestMillis = time.Since(ingestStart).Milliseconds()
	if report.IngestMillis > 0 {
		report.IngestOpsPerSec = float64(report.TotalOps) / (float64(report.IngestMillis) / 1000)
	}
	retiredMu.Lock()
	for _, c := range retired {
		c.Close()
	}
	retiredMu.Unlock()

	st := ls.Stats()
	report.AppliedBatches = st.AppliedBatches
	report.Compactions = st.Compactions
	report.FinalDeltaAdds = st.DeltaAdds
	report.FinalTombstones = st.Tombstones
	report.WALRecords = st.WALRecords
	if err := ls.LastErr(); err != nil {
		return fmt.Errorf("ingestbench: background error: %w", err)
	}
	report.ReadOps = readOps
	report.ReadP50Micros = ingestPercentile(latencies, 0.50)
	report.ReadP99Micros = ingestPercentile(latencies, 0.99)

	// Ground truth: the final merged view must agree with a from-scratch
	// build of the final triple set on every workload query.
	final := ls.View()
	fg := &rdf.Graph{Dict: g.Dict}
	if err := final.Triples(func(t rdf.Triple) error {
		fg.AddEncoded(t)
		return nil
	}); err != nil {
		return err
	}
	rebuilt := index.Build(fg)
	report.EquivalenceOK = true
	var ciVals []float64
	for qi, pl := range plans {
		rows[qi].WalksToCI = walksToCI[qi]
		if walksToCI[qi] > 0 {
			ciVals = append(ciVals, float64(walksToCI[qi]))
		}
		groups, err := live.Exact(context.Background(), final, pl)
		if err != nil {
			return err
		}
		for _, v := range groups {
			rows[qi].LiveExact += v
		}
		rows[qi].RebuildExact = float64(ctj.Count(rebuilt, pl))
		if rows[qi].LiveExact != rows[qi].RebuildExact {
			report.EquivalenceOK = false
		}
	}
	report.Queries = rows
	report.MedianWalksToCI = estMedian(ciVals)

	fmt.Fprintf(w, "ingest benchmark: %d base triples, %d-op stream (%d adds, %d deletes) over %s scale %g\n",
		report.BaseTriples, len(stream), report.StreamAdds, report.StreamDels, cfg.Name, scale)
	fmt.Fprintf(w, "ingest: %.0f ops/s over %d ms (%d ops, %d batches, %d compactions, overlay %d+%d residual)\n",
		report.IngestOpsPerSec, report.IngestMillis, report.TotalOps, report.AppliedBatches,
		report.Compactions, report.FinalDeltaAdds, report.FinalTombstones)
	fmt.Fprintf(w, "reads under ingest: %d ops, p50 %.0fµs p99 %.0fµs, median walks-to-CI %.0f\n",
		report.ReadOps, report.ReadP50Micros, report.ReadP99Micros, report.MedianWalksToCI)
	if !report.EquivalenceOK {
		fmt.Fprintf(w, "WARNING: merged view disagrees with from-scratch rebuild\n")
	}

	report.PeakRSSBytes = peakRSSBytes()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}
