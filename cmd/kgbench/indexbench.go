package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/rdf"
)

// indexBenchResult is one microbenchmark row of BENCH_index.json.
type indexBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// indexBenchReport is the BENCH_index.json schema: the fixture description
// plus the measured storage-layer microbenchmarks. Committed as a baseline so
// regressions show up in review diffs.
type indexBenchReport struct {
	Dataset      string             `json:"dataset"`
	Scale        float64            `json:"scale"`
	Triples      int                `json:"triples"`
	GoMaxProcs   int                `json:"gomaxprocs"`
	GoVersion    string             `json:"go_version"`
	PeakRSSBytes int64              `json:"peak_rss_bytes"`
	Results      []indexBenchResult `json:"results"`
}

// runIndexBench measures the storage-layer microbenchmarks (index build and
// span lookups) on a DBpedia-sim fixture and writes the JSON report; a
// human-readable summary goes to w. It uses testing.Benchmark, so the timings
// are self-calibrating like `go test -bench`.
func runIndexBench(w io.Writer, outPath string, scale float64) error {
	cfg := kggen.DBpediaSim(scale)
	g, _, err := kggen.Generate(cfg)
	if err != nil {
		return err
	}
	st := index.Build(g)
	report := indexBenchReport{
		Dataset:    cfg.Name,
		Scale:      scale,
		Triples:    g.Len(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	record := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		report.Results = append(report.Results, indexBenchResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(w, "%-24s %14.1f ns/op %8d B/op %6d allocs/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	record("IndexBuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			index.Build(g)
		}
	})
	nd := rdf.ID(g.Dict.Len())
	record("SpanL1", func(b *testing.B) {
		b.ReportAllocs()
		var acc int
		for i := 0; i < b.N; i++ {
			acc += st.SpanL1(index.SPO, rdf.ID(i)%nd).Len()
		}
		sinkInt = acc
	})
	record("SpanL2", func(b *testing.B) {
		b.ReportAllocs()
		var acc int
		for i := 0; i < b.N; i++ {
			acc += st.SpanL2(index.PSO, rdf.ID(i)%nd, rdf.ID(i*7)%nd).Len()
		}
		sinkInt = acc
	})

	report.PeakRSSBytes = peakRSSBytes()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%s scale %g, %d triples)\n", outPath, cfg.Name, scale, g.Len())
	return nil
}

// sinkInt defeats dead-code elimination in the lookup benchmarks.
var sinkInt int
