package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"kgexplore/internal/core"
	"kgexplore/internal/ctj"
	"kgexplore/internal/kggen"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/snap"
	"kgexplore/internal/wj"
)

// The scale ladder proves the PR's two perf claims on real fixture sizes:
// (1) every rung's snapshot is built through the external-memory streaming
// path under the -scalemembudget sort-buffer bound, and (2) on a skewed
// join workload, semantic stratification reaches the target relative CI in
// materially fewer walks than uniform root sampling, at every rung, while
// staying within its own CI of the exact answer.
//
// The skewed workload is a deterministic hub/leaf block appended to the
// dbpedia-sim stream (same shape as internal/core's stratification stress
// fixture): hub subjects whose knows-edges always reach two pop values, and
// person subjects whose knows-edges reach one pop value two thirds of the
// time. The two characteristic sets split cleanly into root strata with
// wildly different walk variance, which is exactly the structure
// stratification exists for — and exactly what uniform sampling pays for.

// scaleStrategyResult is one strategy's outcome on one rung, over scaleReps
// seeded runs.
type scaleStrategyResult struct {
	// MeanWalksToCI averages the walks needed to bring the global 0.95 CI
	// half-width under rel_ci_target of the estimate (converged runs only).
	MeanWalksToCI float64 `json:"mean_walks_to_ci"`
	// Converged counts runs that reached the target before max_walks;
	// Covered counts runs whose final CI contained the exact answer.
	Converged int `json:"converged_runs"`
	Covered   int `json:"covered_runs"`
	// Estimate and CI are the first run's final values, for eyeballing.
	Estimate float64 `json:"estimate"`
	CI       float64 `json:"ci"`
	Strata   int     `json:"strata,omitempty"`
}

// scaleRung is one fixture size of BENCH_scale.json.
type scaleRung struct {
	Scale      float64 `json:"scale"`
	RawTriples int     `json:"raw_triples"`
	Triples    int     `json:"triples"`

	// Streaming-build evidence: sorted runs spilled, spill bytes, snapshot
	// size, wall time, and the process peak RSS after the build (monotone
	// across rungs — getrusage reports the lifetime maximum).
	SortRuns      int   `json:"sort_runs"`
	SpillBytes    int64 `json:"spill_bytes"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	BuildMillis   int64 `json:"build_millis"`
	PeakRSSBytes  int64 `json:"peak_rss_bytes"`

	Exact      float64             `json:"exact"`
	Uniform    scaleStrategyResult `json:"uniform"`
	Stratified scaleStrategyResult `json:"stratified"`
	// WalksRatio is uniform over stratified mean walks-to-CI: >1 means
	// stratification needed fewer walks for the same confidence.
	WalksRatio float64 `json:"walks_ratio"`
}

// scaleBenchReport is the BENCH_scale.json schema. Committed as a baseline:
// the streaming build must keep working at every rung and stratification
// must keep its walks-to-CI advantage on the skewed workload.
type scaleBenchReport struct {
	Dataset        string  `json:"dataset"`
	Seed           int64   `json:"seed"`
	RelCI          float64 `json:"rel_ci_target"`
	MaxWalks       int64   `json:"max_walks"`
	Reps           int     `json:"reps"`
	MemBudgetBytes int64   `json:"mem_budget_bytes"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	GoVersion      string  `json:"go_version"`
	PeakRSSBytes   int64   `json:"peak_rss_bytes"`

	Rungs []scaleRung `json:"rungs"`
	// MinWalksRatio is the worst rung's uniform/stratified walks ratio.
	MinWalksRatio float64 `json:"min_walks_ratio"`
	// EquivalenceOK: every rung's strategies kept the exact answer inside
	// the final CI in a majority of runs.
	EquivalenceOK bool `json:"equivalence_ok"`
}

const (
	scaleRelCI    = 0.10
	scaleMaxWalks = 50000
	scaleReps     = 5
	scalePerHub   = 40
)

// skewSizes scales the hub/leaf block with the rung so the skewed join stays
// a fixed (small) fraction of the fixture instead of vanishing at scale.
func skewSizes(scale float64) (hubs, leaves int) {
	hubs = 4 + int(36*scale)
	leaves = 150 + int(1350*scale)
	return
}

// skewExact is the analytic global count of the skewed chain: every hub
// knows-edge reaches two pop values; person p's edge reaches one unless
// p%3 == 0.
func skewExact(hubs, leaves int) float64 {
	return float64(hubs*scalePerHub*2 + leaves - (leaves+2)/3)
}

// emitSkew appends the skewed block to the stream, interning its terms into
// the generator's dictionary.
func emitSkew(d *rdf.Dict, hubs, leaves int, emit func(rdf.Triple) error) error {
	knows := d.InternIRI("skew:knows")
	pop := d.InternIRI("skew:pop")
	hubFlag := d.InternIRI("skew:hubFlag")
	personFlag := d.InternIRI("skew:personFlag")
	yes := d.InternIRI("skew:yes")
	vals := []rdf.ID{
		d.Intern(rdf.NewTypedLiteral("5", rdf.XSDInteger)),
		d.Intern(rdf.NewTypedLiteral("13", rdf.XSDInteger)),
	}
	big := d.Intern(rdf.NewTypedLiteral("900", rdf.XSDInteger))
	for h := 0; h < hubs; h++ {
		hub := d.InternIRI(fmt.Sprintf("skew:hub%d", h))
		if err := emit(rdf.Triple{S: hub, P: hubFlag, O: yes}); err != nil {
			return err
		}
		for j := 0; j < scalePerHub; j++ {
			o := d.InternIRI(fmt.Sprintf("skew:friend%d_%d", h, j))
			if err := emit(rdf.Triple{S: hub, P: knows, O: o}); err != nil {
				return err
			}
			for _, v := range vals {
				if err := emit(rdf.Triple{S: o, P: pop, O: v}); err != nil {
					return err
				}
			}
		}
	}
	for p := 0; p < leaves; p++ {
		s := d.InternIRI(fmt.Sprintf("skew:person%d", p))
		o := d.InternIRI(fmt.Sprintf("skew:pal%d", p))
		if err := emit(rdf.Triple{S: s, P: personFlag, O: yes}); err != nil {
			return err
		}
		if err := emit(rdf.Triple{S: s, P: knows, O: o}); err != nil {
			return err
		}
		if p%3 != 0 {
			if err := emit(rdf.Triple{S: o, P: pop, O: big}); err != nil {
				return err
			}
		}
	}
	return nil
}

// ladderStepper is the slice of the stepper contract the ladder drives —
// satisfied by both core.Runner and core.Stratified.
type ladderStepper interface {
	Step()
	Walks() int64
	Snapshot() wj.Result
}

// runToCI steps until the global group's CI half-width falls under
// rel×estimate, in batches; walks is 0 when maxWalks hit first. within
// reports whether the exact answer sits inside the final CI.
func runToCI(r ladderStepper, exact float64) (walks int64, est, ci float64, within bool) {
	const batch = 64
	for r.Walks() < scaleMaxWalks {
		for i := 0; i < batch; i++ {
			r.Step()
		}
		res := r.Snapshot()
		est, ci = res.Estimates[core.GlobalGroup], res.CI[core.GlobalGroup]
		if est > 0 && ci <= scaleRelCI*est {
			return r.Walks(), est, ci, math.Abs(est-exact) <= ci
		}
	}
	return 0, est, ci, math.Abs(est-exact) <= ci
}

func runStrategy(mk func(seed int64) ladderStepper, exact float64, seed int64) scaleStrategyResult {
	var out scaleStrategyResult
	var sum float64
	for rep := 0; rep < scaleReps; rep++ {
		r := mk(seed + int64(rep))
		walks, est, ci, within := runToCI(r, exact)
		if rep == 0 {
			out.Estimate, out.CI = est, ci
			if s, ok := r.(*core.Stratified); ok {
				out.Strata = s.Stats().Strata
			}
		}
		if walks > 0 {
			out.Converged++
			sum += float64(walks)
		}
		if within {
			out.Covered++
		}
	}
	if out.Converged > 0 {
		out.MeanWalksToCI = sum / float64(out.Converged)
	}
	return out
}

// runScaleBench climbs the ladder: per rung, stream-build the snapshot
// (dbpedia-sim plus the skewed block) under the memory budget, mmap it,
// and race uniform vs stratified sampling to the target CI on the skewed
// chain query.
func runScaleBench(w io.Writer, outPath, rungSpec string, seed int64, memBudgetMiB int) error {
	var rungScales []float64
	for _, f := range strings.Split(rungSpec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("scalebench: bad rung %q in -scalerungs", f)
		}
		rungScales = append(rungScales, v)
	}
	if len(rungScales) == 0 {
		return fmt.Errorf("scalebench: -scalerungs is empty")
	}
	dir, err := os.MkdirTemp("", "kgscalebench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	report := scaleBenchReport{
		Dataset:        "dbpedia-sim+skew",
		Seed:           seed,
		RelCI:          scaleRelCI,
		MaxWalks:       scaleMaxWalks,
		Reps:           scaleReps,
		MemBudgetBytes: int64(memBudgetMiB) << 20,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		GoVersion:      runtime.Version(),
		EquivalenceOK:  true,
	}
	fmt.Fprintf(w, "scale ladder: rungs %v, streaming builds under %d MiB sort budget\n",
		rungScales, memBudgetMiB)
	fmt.Fprintf(w, "%-8s %10s %8s %12s %10s %12s %12s %8s\n",
		"scale", "triples", "runs", "spill", "build", "unif walks", "strat walks", "ratio")

	for _, scale := range rungScales {
		cfg := kggen.DBpediaSim(scale)
		hubs, leaves := skewSizes(scale)
		feed := func(emit func(rdf.Triple) error) (*rdf.Dict, error) {
			d, _, err := kggen.Stream(cfg, emit)
			if err != nil {
				return nil, err
			}
			if err := emitSkew(d, hubs, leaves, emit); err != nil {
				return nil, err
			}
			return d, nil
		}
		path := filepath.Join(dir, fmt.Sprintf("rung%g.kgs", scale))
		start := time.Now()
		stats, err := snap.BuildExternalFile(path, feed,
			&snap.Meta{Source: fmt.Sprintf("%s+skew@%g", cfg.Name, scale), CreatedUnix: time.Now().Unix()},
			snap.ExtBuildOptions{TmpDir: dir, MemBudget: report.MemBudgetBytes})
		if err != nil {
			return err
		}
		rung := scaleRung{
			Scale:        scale,
			RawTriples:   stats.RawTriples,
			Triples:      stats.Triples,
			SortRuns:     stats.Runs,
			SpillBytes:   stats.SpillBytes,
			BuildMillis:  time.Since(start).Milliseconds(),
			PeakRSSBytes: peakRSSBytes(),
		}
		if fi, err := os.Stat(path); err == nil {
			rung.SnapshotBytes = fi.Size()
		}

		l, err := snap.LoadFile(path, snap.Options{Mode: snap.ModeAuto})
		if err != nil {
			return err
		}
		st := l.Store
		knows, ok1 := st.Dict().LookupIRI("skew:knows")
		pop, ok2 := st.Dict().LookupIRI("skew:pop")
		if !ok1 || !ok2 {
			l.Close()
			return fmt.Errorf("scalebench: skew predicates missing from rung %g", scale)
		}
		q := &query.Query{
			Patterns: []query.Pattern{
				{S: query.V(0), P: query.C(knows), O: query.V(1)},
				{S: query.V(1), P: query.C(pop), O: query.V(2)},
			},
			Alpha: query.NoVar,
			Beta:  2,
			Agg:   query.AggCount,
		}
		pl, err := query.Compile(q)
		if err != nil {
			l.Close()
			return err
		}
		rung.Exact = skewExact(hubs, leaves)
		if got := float64(ctj.Count(st, pl)); got != rung.Exact {
			l.Close()
			return fmt.Errorf("scalebench: rung %g exact drifted: ctj %v, analytic %v", scale, got, rung.Exact)
		}

		rung.Uniform = runStrategy(func(s int64) ladderStepper {
			return core.New(st, pl, core.Options{Threshold: -1, Seed: s})
		}, rung.Exact, seed)
		rung.Stratified = runStrategy(func(s int64) ladderStepper {
			return core.NewStratified(st, pl, core.StratifiedOptions{
				Options: core.Options{Threshold: -1, Seed: s},
			})
		}, rung.Exact, seed)
		l.Close()
		os.Remove(path)

		if rung.Stratified.MeanWalksToCI > 0 && rung.Uniform.Converged > 0 {
			rung.WalksRatio = rung.Uniform.MeanWalksToCI / rung.Stratified.MeanWalksToCI
		} else if rung.Uniform.Converged == 0 && rung.Stratified.Converged > 0 {
			// Uniform never reached the target: credit it the walk cap.
			rung.WalksRatio = float64(scaleMaxWalks) / rung.Stratified.MeanWalksToCI
		}
		if rung.Uniform.Covered <= scaleReps/2 || rung.Stratified.Covered <= scaleReps/2 {
			report.EquivalenceOK = false
		}
		if report.MinWalksRatio == 0 || rung.WalksRatio < report.MinWalksRatio {
			report.MinWalksRatio = rung.WalksRatio
		}
		report.Rungs = append(report.Rungs, rung)
		fmt.Fprintf(w, "%-8g %10d %8d %11.1fM %9dms %12.0f %12.0f %7.2fx\n",
			scale, rung.Triples, rung.SortRuns, float64(rung.SpillBytes)/(1<<20),
			rung.BuildMillis, rung.Uniform.MeanWalksToCI, rung.Stratified.MeanWalksToCI,
			rung.WalksRatio)
	}

	fmt.Fprintf(w, "worst rung: stratified needs %.2fx fewer walks; equivalence (exact within CI) %v\n",
		report.MinWalksRatio, report.EquivalenceOK)
	if report.MinWalksRatio < 1.3 {
		fmt.Fprintf(w, "WARNING: stratification advantage under 1.3x on at least one rung\n")
	}

	report.PeakRSSBytes = peakRSSBytes()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}
