// Command kgbench runs the paper's experiments (Table I and Figures 8-11,
// plus the sample-time summary) over the synthetic datasets and prints the
// regenerated tables.
//
// Usage:
//
//	kgbench -all                         # everything, quick protocol
//	kgbench -all -full -scale 0.5        # the paper's 9s x 1s protocol
//	kgbench -fig8 -budget 2s -interval 500ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kgexplore/internal/experiments"
)

func main() {
	var (
		all        = flag.Bool("all", false, "run every experiment")
		table1     = flag.Bool("table1", false, "Table I: dataset information")
		fig8       = flag.Bool("fig8", false, "Fig. 8: six selected queries")
		fig9       = flag.Bool("fig9", false, "Fig. 9: all queries, distinct")
		fig10      = flag.Bool("fig10", false, "Fig. 10: all queries, no distinct")
		fig11      = flag.Bool("fig11", false, "Fig. 11: rejection rates")
		stime      = flag.Bool("sampletime", false, "average sample times (§V-C)")
		full       = flag.Bool("full", false, "use the paper's 9s x 1s protocol and 25 paths")
		scale      = flag.Float64("scale", 0.05, "dataset scale factor")
		budget     = flag.Duration("budget", 0, "override online-aggregation budget per query")
		interval   = flag.Duration("interval", 0, "override snapshot interval")
		paths      = flag.Int("paths", 0, "override exploration paths per dataset")
		steps      = flag.Int("steps", 0, "override max exploration steps per path")
		seed       = flag.Int64("seed", 1, "random seed")
		thresh     = flag.Float64("threshold", 0, "override Audit Join tipping threshold")
		nobase     = flag.Bool("skip-baseline", false, "skip the baseline engine in Fig. 8")
		csvDir     = flag.String("csvdir", "", "also write machine-readable CSVs into this directory")
		idxBench   = flag.Bool("indexbench", false, "run the storage-layer microbenchmarks and write -benchout")
		benchOut   = flag.String("benchout", "BENCH_index.json", "output path for -indexbench")
		parBench   = flag.Bool("parallelbench", false, "run the parallel Audit Join shared-cache benchmark and write -parallelout")
		parOut     = flag.String("parallelout", "BENCH_parallel.json", "output path for -parallelbench")
		parWalks   = flag.Int64("parallelwalks", 1000, "walks per worker in -parallelbench")
		snapBench  = flag.Bool("snapbench", false, "run the startup-path benchmark (build vs snapshot loads) and write -snapout")
		snapOut    = flag.String("snapout", "BENCH_startup.json", "output path for -snapbench")
		shardBench = flag.Bool("shardbench", false, "run the sharded scatter-gather benchmark and write -shardout")
		shardOut   = flag.String("shardout", "BENCH_shard.json", "output path for -shardbench")
		shardWalks = flag.Int64("shardwalks", 200000, "total walks per shard count in -shardbench")
		estBench   = flag.Bool("estbench", false, "run the cardinality-estimator benchmark (q-error and walks-to-target-CI, both estimators) and write -estout")
		estOut     = flag.String("estout", "BENCH_estimate.json", "output path for -estbench")
		estPaths   = flag.Int("estpaths", 12, "exploration paths in -estbench")
		distBench  = flag.Bool("distbench", false, "run the distributed scatter-gather benchmark over spawned kgworker processes and write -distout")
		distOut    = flag.String("distout", "BENCH_dist.json", "output path for -distbench")
		distWalks  = flag.Int64("distwalks", 100000, "total walks per fleet width in -distbench")
		distWorker = flag.String("distworker", "", "prebuilt kgworker binary for -distbench (default: go build it)")
		ingBench   = flag.Bool("ingestbench", false, "run the live-ingestion benchmark (walks-to-CI and read latency under sustained concurrent ingest) and write -ingestout")
		ingOut     = flag.String("ingestout", "BENCH_ingest.json", "output path for -ingestbench")
		scaleBench = flag.Bool("scalebench", false, "run the scale ladder (streaming builds + uniform-vs-stratified walks-to-CI) and write -scaleout")
		scaleOut   = flag.String("scaleout", "BENCH_scale.json", "output path for -scalebench")
		scaleRungs = flag.String("scalerungs", "0.02,0.2,1,4.2", "comma-separated dbpedia-sim scales for -scalebench rungs")
		scaleMem   = flag.Int("scalemembudget", 32, "sort-buffer memory budget for -scalebench streaming builds, MiB")
		surfBench  = flag.Bool("surfacebench", false, "run the extended-surface benchmark (FILTER/UNION/path accuracy and walks-to-target-CI) and write -surfaceout")
		surfOut    = flag.String("surfaceout", "BENCH_surface.json", "output path for -surfacebench")
		surfN      = flag.Int("surfacequeries", 12, "extended-surface queries in -surfacebench")
		diffMode   = flag.Bool("diff", false, "compare two kgbench JSON reports (kgbench -diff old.json new.json); exit 1 on regressions past -diffthreshold")
		diffThresh = flag.Float64("diffthreshold", 0.25, "relative regression threshold for -diff")
	)
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "kgbench: -diff needs exactly two report paths: kgbench -diff old.json new.json")
			os.Exit(2)
		}
		regressions, err := runDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *diffThresh)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kgbench: %v\n", err)
			os.Exit(1)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	writeCSV := func(name string, fn func(w *os.File) error) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(*csvDir + "/" + name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kgbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			fmt.Fprintf(os.Stderr, "kgbench: %v\n", err)
			os.Exit(1)
		}
	}

	cfg := experiments.Quick()
	cfg.Scale = *scale
	cfg.Paths = 6
	cfg.Budget = 500 * time.Millisecond
	cfg.Interval = 100 * time.Millisecond
	cfg.MaxSteps = 4
	if *full {
		cfg = experiments.Full(*scale)
	}
	cfg.Seed = *seed
	if *budget > 0 {
		cfg.Budget = *budget
	}
	if *interval > 0 {
		cfg.Interval = *interval
	}
	if *paths > 0 {
		cfg.Paths = *paths
	}
	if *steps > 0 {
		cfg.MaxSteps = *steps
	}
	if *thresh > 0 {
		cfg.Threshold = *thresh
	}
	cfg.SkipBaseline = *nobase

	w := os.Stdout
	any := false
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "kgbench: %v\n", err)
		os.Exit(1)
	}

	if *all || *table1 {
		any = true
		infos, err := experiments.Table1(w, cfg)
		if err != nil {
			fail(err)
		}
		writeCSV("table1.csv", func(f *os.File) error {
			return experiments.WriteTable1CSV(f, infos)
		})
	}
	if *all || *fig8 {
		any = true
		start := time.Now()
		rows, err := experiments.Fig8(w, cfg)
		if err != nil {
			fail(err)
		}
		writeCSV("fig8.csv", func(f *os.File) error {
			return experiments.WriteFig8CSV(f, rows)
		})
		fmt.Fprintf(w, "\n[fig8 took %v]\n", time.Since(start).Round(time.Millisecond))
	}
	if *all || *fig9 || *fig10 || *fig11 || *stime {
		any = true
		start := time.Now()
		suite, err := experiments.NewSuite(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(w, "\n[workload generated in %v: %d + %d queries]\n",
			time.Since(start).Round(time.Millisecond),
			suite.Queries("dbpedia-sim"), suite.Queries("lgd-sim"))
		if *all || *fig9 {
			cells, err := suite.FigAllQueries(w, true)
			if err != nil {
				fail(err)
			}
			writeCSV("fig9.csv", func(f *os.File) error {
				return experiments.WriteTukeyCSV(f, cells)
			})
		}
		if *all || *fig10 {
			cells, err := suite.FigAllQueries(w, false)
			if err != nil {
				fail(err)
			}
			writeCSV("fig10.csv", func(f *os.File) error {
				return experiments.WriteTukeyCSV(f, cells)
			})
		}
		if *all || *fig11 {
			rows, err := suite.Fig11(w)
			if err != nil {
				fail(err)
			}
			writeCSV("fig11.csv", func(f *os.File) error {
				return experiments.WriteFig11CSV(f, rows)
			})
		}
		if *all || *stime {
			if _, _, err := suite.SampleTimes(w); err != nil {
				fail(err)
			}
		}
	}
	if *idxBench {
		any = true
		if err := runIndexBench(w, *benchOut, *scale); err != nil {
			fail(err)
		}
	}
	if *parBench {
		any = true
		if err := runParallelBench(w, *parOut, *scale, *seed, *parWalks); err != nil {
			fail(err)
		}
	}
	if *snapBench {
		any = true
		if err := runSnapBench(w, *snapOut, *scale); err != nil {
			fail(err)
		}
	}
	if *shardBench {
		any = true
		if err := runShardBench(w, *shardOut, *scale, *seed, *shardWalks); err != nil {
			fail(err)
		}
	}
	if *estBench {
		any = true
		if err := runEstBench(w, *estOut, *scale, *seed, *estPaths); err != nil {
			fail(err)
		}
	}
	if *surfBench {
		any = true
		if err := runSurfaceBench(w, *surfOut, *scale, *seed, *surfN); err != nil {
			fail(err)
		}
	}
	if *distBench {
		any = true
		if err := runDistBench(w, *distOut, *scale, *seed, *distWalks, *distWorker); err != nil {
			fail(err)
		}
	}
	if *ingBench {
		any = true
		if err := runIngestBench(w, *ingOut, *scale, *seed); err != nil {
			fail(err)
		}
	}
	if *scaleBench {
		any = true
		if err := runScaleBench(w, *scaleOut, *scaleRungs, *seed, *scaleMem); err != nil {
			fail(err)
		}
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}
