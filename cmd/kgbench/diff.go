package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// runDiff compares two kgbench JSON reports metric by metric and returns the
// number of regressions past the relative threshold. Metrics whose names
// encode a direction (walks_per_sec, *_err, *_ns, ...) regress only when they
// move the bad way; directionless metrics are printed when they move but
// never fail the diff. Intended for CI: kgbench -diff old.json new.json
// exits non-zero when regressions > 0.
func runDiff(w io.Writer, oldPath, newPath string, threshold float64) (int, error) {
	oldM, err := loadFlat(oldPath)
	if err != nil {
		return 0, err
	}
	newM, err := loadFlat(newPath)
	if err != nil {
		return 0, err
	}

	keys := make([]string, 0, len(oldM))
	for k := range oldM {
		if _, ok := newM[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return 0, fmt.Errorf("diff: %s and %s share no numeric metrics", oldPath, newPath)
	}

	regressions := 0
	moved := 0
	for _, k := range keys {
		ov, nv := oldM[k], newM[k]
		rel := relChange(ov, nv)
		if math.Abs(rel) <= threshold {
			continue
		}
		moved++
		switch dir := metricDirection(k); {
		case dir > 0 && nv > ov: // higher is worse
			regressions++
			fmt.Fprintf(w, "REGRESSION %-50s %14.4g -> %-14.4g (%+.0f%%)\n", k, ov, nv, rel*100)
		case dir < 0 && nv < ov: // lower is worse
			regressions++
			fmt.Fprintf(w, "REGRESSION %-50s %14.4g -> %-14.4g (%+.0f%%)\n", k, ov, nv, rel*100)
		case dir != 0:
			fmt.Fprintf(w, "improved   %-50s %14.4g -> %-14.4g (%+.0f%%)\n", k, ov, nv, rel*100)
		default:
			fmt.Fprintf(w, "changed    %-50s %14.4g -> %-14.4g (%+.0f%%)\n", k, ov, nv, rel*100)
		}
	}
	fmt.Fprintf(w, "diff: %d shared metrics, %d moved past %.0f%%, %d regressions\n",
		len(keys), moved, threshold*100, regressions)
	return regressions, nil
}

// relChange is (new-old)/|old|; a metric appearing from zero counts as a
// full-threshold move in the sign of the new value.
func relChange(ov, nv float64) float64 {
	if ov == 0 {
		if nv == 0 {
			return 0
		}
		return math.Copysign(math.Inf(1), nv)
	}
	return (nv - ov) / math.Abs(ov)
}

// metricDirection classifies a metric path by its last segment: +1 when a
// higher value is a regression (errors, latencies, traffic, retries), -1
// when a lower value is (throughput, ratios, cache hits), 0 when the
// direction is unknown (configuration echoes like scale, seed, triples).
func metricDirection(key string) int {
	seg := key
	if i := strings.LastIndexByte(seg, '.'); i >= 0 {
		seg = seg[i+1:]
	}
	seg = strings.ToLower(seg)
	switch {
	case strings.Contains(seg, "rss"):
		// Peak RSS is machine context (page cache, allocator arenas), not a
		// pass/fail metric; report moves but never gate on them.
		return 0
	case strings.Contains(seg, "err"),
		strings.HasSuffix(seg, "_ns"),
		strings.HasSuffix(seg, "millis"),
		strings.HasSuffix(seg, "micros"),
		strings.Contains(seg, "bytes"),
		strings.Contains(seg, "misses"),
		strings.Contains(seg, "retries"),
		strings.Contains(seg, "rejected"),
		strings.Contains(seg, "walks_to_target"),
		strings.Contains(seg, "walks_to_ci"):
		return 1
	case strings.Contains(seg, "walks_ratio"),
		strings.Contains(seg, "equivalence_ok"):
		return -1
	case strings.Contains(seg, "per_sec"),
		strings.Contains(seg, "ratio"),
		strings.Contains(seg, "hits"):
		return -1
	}
	return 0
}

// loadFlat reads a JSON report and flattens it to dotted-path -> number,
// e.g. rows.1.walks_per_sec. Non-numeric leaves are dropped.
func loadFlat(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("diff: %s: %w", path, err)
	}
	out := map[string]float64{}
	flattenJSON("", v, out)
	return out, nil
}

func flattenJSON(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, c := range t {
			flattenJSON(joinPath(prefix, k), c, out)
		}
	case []any:
		for i, c := range t {
			flattenJSON(joinPath(prefix, strconv.Itoa(i)), c, out)
		}
	case float64:
		out[prefix] = t
	case bool:
		if t {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	}
}

func joinPath(prefix, key string) string {
	if prefix == "" {
		return key
	}
	return prefix + "." + key
}
