package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"kgexplore/internal/core"
	"kgexplore/internal/ctj"
	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/workload"
)

// parallelBenchRow is one (workers, cache mode) measurement aggregated over
// the benchmark's query mix.
type parallelBenchRow struct {
	Workers     int     `json:"workers"`
	Shared      bool    `json:"shared"`
	Walks       int64   `json:"walks"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	WalksPerSec float64 `json:"walks_per_sec"`
	CountMisses int64   `json:"count_misses"`
	ProbMisses  int64   `json:"prob_misses"`
	AggMisses   int64   `json:"agg_misses"`
	ExistMisses int64   `json:"exist_misses"`
	Hits        int64   `json:"hits"`
	HitRate     float64 `json:"hit_rate"`
}

// parallelBenchReport is the BENCH_parallel.json schema: the fixture and
// protocol, the shared-vs-private grid, and the two headline ratios —
// 4-worker shared-cache miss inflation over a single worker (1.0 means the
// workers duplicated no cache work) and 4-worker walk throughput over a
// single worker (per-worker walk counts are fixed, so >1 means the warm
// cache amortised; on a multi-core box parallelism adds to this).
type parallelBenchReport struct {
	Dataset        string             `json:"dataset"`
	Scale          float64            `json:"scale"`
	Triples        int                `json:"triples"`
	Queries        int                `json:"queries"`
	WalksPerWorker int64              `json:"walks_per_worker"`
	Seed           int64              `json:"seed"`
	GoMaxProcs     int                `json:"gomaxprocs"`
	GoVersion      string             `json:"go_version"`
	PeakRSSBytes   int64              `json:"peak_rss_bytes"`
	Rows           []parallelBenchRow `json:"rows"`
	// MissRatioShared4 = (CountMisses+ProbMisses of shared 4-worker) /
	// (same of the 1-worker run). Single-flight keeps it near 1.
	MissRatioShared4 float64 `json:"miss_ratio_shared4_vs_1"`
	// ThroughputRatioShared4 = walks/sec of shared 4-worker over 1-worker.
	ThroughputRatioShared4 float64 `json:"throughput_ratio_shared4_vs_1"`
}

// hubChainPlan builds an ungrouped distinct chain through the dataset's two
// densest predicates:
//
//	?a p1 ?h . ?b p1 ?h . ?b p2 ?c    (count distinct ?c)
//
// The hub self-join makes the true path count orders of magnitude larger
// than the triple count, so the evaluator's one-pass Pr(b) materialization is
// the dominant cache-fill cost of the whole run. With private caches every
// worker repeats that pass; the shared cache pays it once — the contrast the
// benchmark exists to measure. Returns nil if the plan does not compile
// (degenerate fixtures).
func hubChainPlan(g *rdf.Graph, st *index.Store) *query.Plan {
	counts := map[rdf.ID]int{}
	for _, tr := range g.Triples {
		counts[tr.P]++
	}
	var p1, p2 rdf.ID
	n1, n2 := 0, 0
	for p, n := range counts {
		switch {
		case n > n1 || (n == n1 && p < p1):
			p2, n2 = p1, n1
			p1, n1 = p, n
		case n > n2 || (n == n2 && p < p2):
			p2, n2 = p, n
		}
	}
	if n2 == 0 {
		return nil
	}
	q := &query.Query{
		Alpha:    query.NoVar,
		Beta:     3,
		Distinct: true,
		Patterns: []query.Pattern{
			{S: query.V(1), P: query.C(p1), O: query.V(0)},
			{S: query.V(2), P: query.C(p1), O: query.V(0)},
			{S: query.V(2), P: query.C(p2), O: query.V(3)},
		},
	}
	pl, err := query.Compile(q)
	if err != nil {
		return nil
	}
	return pl
}

func missKinds(cs ctj.CacheStats) (count, prob, agg, exist int64) {
	return cs.CountMisses, cs.ProbMisses, cs.AggMisses, cs.ExistMisses
}

func hitSum(cs ctj.CacheStats) int64 {
	return cs.CountHits + cs.ProbHits + cs.AggHits + cs.ExistHits
}

// runParallelBench measures Audit Join walk throughput and CTJ cache traffic
// at 1/2/4/8 workers with the shared concurrent cache versus private
// per-worker caches, over a workload-generated query mix on a DBpedia-sim
// fixture. Per-worker walk counts are fixed (W workers perform W×N walks),
// so the shared-over-private contrast isolates cache warm-up: private
// workers each repay the full miss cost, shared workers pay it once.
func runParallelBench(w io.Writer, outPath string, scale float64, seed, walksPerWorker int64) error {
	cfg := kggen.DBpediaSim(scale)
	g, schema, err := kggen.Generate(cfg)
	if err != nil {
		return err
	}
	st := index.Build(g)

	gen := &workload.Generator{Store: st, Schema: schema, Seed: seed, MaxSteps: 4}
	recs := gen.Paths(4)
	const maxQueries = 5
	if len(recs) > maxQueries {
		recs = recs[:maxQueries]
	}
	if len(recs) == 0 {
		return fmt.Errorf("parallelbench: workload generated no queries at scale %g", scale)
	}
	plans := make([]*query.Plan, 0, len(recs)+1)
	for _, rec := range recs {
		plans = append(plans, rec.Plan)
	}
	if hub := hubChainPlan(g, st); hub != nil {
		// A dense-hub chain whose estimated join size exceeds the prob
		// materialization limit, so Pr(a,b) lookups take the lazy per-pair
		// path: the expensive-miss regime where the shared cache matters most.
		plans = append(plans, hub)
	}

	report := parallelBenchReport{
		Dataset:        cfg.Name,
		Scale:          scale,
		Triples:        g.Len(),
		Queries:        len(plans),
		WalksPerWorker: walksPerWorker,
		Seed:           seed,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		GoVersion:      runtime.Version(),
	}

	bench := func(workers int, shared bool) parallelBenchRow {
		row := parallelBenchRow{Workers: workers, Shared: shared}
		start := time.Now()
		for _, pl := range plans {
			opts := core.Options{
				Threshold:     core.DefaultThreshold,
				Seed:          seed,
				NoSharedCache: !shared,
			}
			res, ps, err := core.RunParallelStats(context.Background(), st, pl, opts, workers,
				exec.Options{MaxWalks: walksPerWorker})
			if err != nil {
				// No context or budget in play: a failure here is a bug.
				panic(err)
			}
			row.Walks += res.Walks
			if ps.SharedUsed {
				c, p, a, e := missKinds(ps.Shared)
				row.CountMisses += c
				row.ProbMisses += p
				row.AggMisses += a
				row.ExistMisses += e
				row.Hits += hitSum(ps.Shared)
			} else {
				for _, cs := range ps.PerWorker {
					c, p, a, e := missKinds(cs)
					row.CountMisses += c
					row.ProbMisses += p
					row.AggMisses += a
					row.ExistMisses += e
					row.Hits += hitSum(cs)
				}
			}
		}
		row.ElapsedNs = time.Since(start).Nanoseconds()
		row.WalksPerSec = float64(row.Walks) / (float64(row.ElapsedNs) / 1e9)
		misses := row.CountMisses + row.ProbMisses + row.AggMisses + row.ExistMisses
		if total := row.Hits + misses; total > 0 {
			row.HitRate = float64(row.Hits) / float64(total)
		}
		return row
	}

	fmt.Fprintf(w, "parallelbench: %s scale %g, %d triples, %d queries, %d walks/worker\n",
		cfg.Name, scale, g.Len(), len(plans), walksPerWorker)
	var shared1, shared4 parallelBenchRow
	for _, shared := range []bool{true, false} {
		for _, workers := range []int{1, 2, 4, 8} {
			row := bench(workers, shared)
			report.Rows = append(report.Rows, row)
			if shared && workers == 1 {
				shared1 = row
			}
			if shared && workers == 4 {
				shared4 = row
			}
			mode := "private"
			if shared {
				mode = "shared"
			}
			fmt.Fprintf(w, "  %-7s w=%d %10.0f walks/s  miss count=%d prob=%d agg=%d exist=%d  hit rate %.3f\n",
				mode, workers, row.WalksPerSec, row.CountMisses, row.ProbMisses, row.AggMisses, row.ExistMisses, row.HitRate)
		}
	}

	if d := shared1.CountMisses + shared1.ProbMisses; d > 0 {
		report.MissRatioShared4 = float64(shared4.CountMisses+shared4.ProbMisses) / float64(d)
	}
	if shared1.WalksPerSec > 0 {
		report.ThroughputRatioShared4 = shared4.WalksPerSec / shared1.WalksPerSec
	}
	fmt.Fprintf(w, "  shared 4w vs 1w: miss ratio %.3f, throughput ratio %.2fx\n",
		report.MissRatioShared4, report.ThroughputRatioShared4)

	report.PeakRSSBytes = peakRSSBytes()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}
