//go:build !unix

package main

// peakRSSBytes is unavailable off unix; reports record 0.
func peakRSSBytes() int64 { return 0 }
