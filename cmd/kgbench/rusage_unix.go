//go:build unix

package main

import (
	"runtime"
	"syscall"
)

// peakRSSBytes reports the process's peak resident set size so far, in
// bytes, via getrusage(2). The kernel reports ru_maxrss in kilobytes on
// Linux and in bytes on Darwin. Returns 0 when the syscall fails.
func peakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	rss := int64(ru.Maxrss)
	if runtime.GOOS != "darwin" {
		rss *= 1024
	}
	return rss
}
