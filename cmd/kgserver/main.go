// Command kgserver serves the exploration system of the paper's Fig. 1 over
// HTTP: a JSON API plus a minimal built-in web UI for interactive bar-chart
// exploration backed by Audit Join.
//
// Usage:
//
//	kgserver -gen dbpedia -scale 0.1 -addr :8080
//	kgserver -load data.nt -addr :8080
//
// Then open http://localhost:8080/ for the UI, or use the API:
//
//	curl -X POST localhost:8080/api/session
//	curl -X POST localhost:8080/api/session/1/chart -d '{"op":"subclass"}'
//	curl -X POST localhost:8080/api/sparql \
//	     -d '{"query":"SELECT ?c COUNT(DISTINCT ?o) WHERE { ?s <p> ?o . ?o a ?c } GROUP BY ?c"}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"kgexplore"

	"kgexplore/internal/server"
)

func main() {
	gen := flag.String("gen", "dbpedia", "generate a synthetic dataset: dbpedia or lgd")
	scale := flag.Float64("scale", 0.05, "scale for -gen")
	load := flag.String("load", "", "load an N-Triples file instead of generating")
	addr := flag.String("addr", ":8080", "listen address")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	var (
		ds  *kgexplore.Dataset
		err error
	)
	switch {
	case *load != "":
		ds, err = kgexplore.LoadFile(*load)
	case *gen == "lgd":
		ds, err = kgexplore.GenerateLGDSim(*scale)
	default:
		ds, err = kgexplore.GenerateDBpediaSim(*scale)
	}
	if err != nil {
		fatal(err)
	}

	srv := server.New(ds)
	srv.EnablePprof = *pprofOn
	if *pprofOn {
		fmt.Fprintf(os.Stderr, "kgserver: pprof enabled at /debug/pprof/\n")
	}
	fmt.Fprintf(os.Stderr, "kgserver: %d triples indexed; listening on %s\n", ds.NumTriples(), *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kgserver: %v\n", err)
	os.Exit(1)
}
