// Command kgserver serves the exploration system of the paper's Fig. 1 over
// HTTP: a JSON API plus a minimal built-in web UI for interactive bar-chart
// exploration backed by Audit Join.
//
// Usage:
//
//	kgserver -gen dbpedia -scale 0.1 -addr :8080
//	kgserver -load data.nt -addr :8080
//	kgserver -snapshot data.kgs -addr :8080      # mmap'ed store snapshot
//	kgserver -snapshot data.kgm -addr :8080      # sharded store set (kgsnap shard)
//	kgserver -gen dbpedia -shards 4 -addr :8080  # shard in-process, scatter-gather aj
//	kgserver -snapshot data.kgm -workers a:7070,b:7070 -addr :8080
//	                                             # distributed: scatter over a kgworker fleet
//	kgserver -snapshot data.kgm -workers manifest -addr :8080
//	                                             # fleet addresses from the manifest (kgsnap shard -workers)
//	kgserver -snapshot data.kgs -live -walpath ingest.wal -addr :8080
//	                                             # live ingestion: POST /ingest, background compaction
//
// With -live the served store is an updatable overlay: POST /ingest applies
// batches of N-Triples adds and deletes (WAL-acknowledged when -walpath is
// set), charts run merged-view Audit Join over base+delta, and a background
// compactor folds the overlay into fresh snapshots without blocking either
// side:
//
//	curl -X POST localhost:8080/ingest \
//	     -d '{"add":["<s> <p> <o> ."],"delete":["<x> <p> <y> ."]}'
//
// Then open http://localhost:8080/ for the UI, or use the API:
//
//	curl -X POST localhost:8080/api/session
//	curl -X POST localhost:8080/api/session/1/chart -d '{"op":"subclass"}'
//	curl -X POST localhost:8080/api/sparql \
//	     -d '{"query":"SELECT ?c COUNT(DISTINCT ?o) WHERE { ?s <p> ?o . ?o a ?c } GROUP BY ?c"}'
//
// With -admin, the served store can be hot-swapped without a restart:
//
//	curl -X POST localhost:8080/admin/swap -d '{"path":"new.kgs"}'
//
// GET /healthz reports liveness plus store provenance (source, load mode,
// triple count, swap count).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"kgexplore"

	"kgexplore/internal/server"
)

func main() {
	gen := flag.String("gen", "dbpedia", "generate a synthetic dataset: dbpedia or lgd")
	scale := flag.Float64("scale", 0.05, "scale for -gen")
	load := flag.String("load", "", "load an N-Triples/Turtle/.kgx file instead of generating")
	snapshot := flag.String("snapshot", "", "serve a store snapshot (.kgs, see kgsnap) instead of generating")
	snapMode := flag.String("snapmode", "mmap", "how to load -snapshot: mmap (zero-copy) or copy (verified)")
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "shard the dataset in-process into N shards and serve scatter-gather Audit Join")
	partitioner := flag.String("partitioner", "", "partitioner for -shards (default "+kgexplore.DefaultPartitioner+")")
	adminOn := flag.Bool("admin", false, "expose POST /admin/swap for hot-swapping the served store")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	estimator := flag.String("estimator", "", "cardinality estimator: "+
		kgexplore.EstimatorSpan+" (default) or "+kgexplore.EstimatorSummary)
	strategy := flag.String("strategy", "", "online sampling strategy: uniform (default) or stratified "+
		"(semantic-aware stratified walk roots with Neyman allocation)")
	workers := flag.String("workers", "", "comma-separated kgworker addresses (requires -snapshot FILE.kgm); "+
		`"manifest" uses the addresses recorded in the manifest`)
	liveOn := flag.Bool("live", false, "serve an updatable overlay store: POST /ingest accepts triple batches, "+
		"background compaction folds the overlay into fresh snapshots")
	walPath := flag.String("walpath", "", "write-ahead log for -live: ingest batches are fsynced here before "+
		"they are acknowledged and replayed on restart (empty disables durability)")
	walNoSync := flag.Bool("walnosync", false, "skip the per-batch fsync on the -live WAL (durability extends "+
		"only to the OS page cache)")
	liveDir := flag.String("livedir", "", "directory for -live compaction snapshots (default: a temp directory)")
	compactEvery := flag.Duration("compactevery", 30*time.Second, "how often -live checks whether to compact")
	compactMin := flag.Int("compactmin", 10_000, "overlay size (delta adds + tombstones) that triggers a "+
		"-live background compaction")
	flag.Parse()

	switch *strategy {
	case "", "uniform", "stratified":
	default:
		fatal(fmt.Errorf("unknown -strategy %q (want uniform or stratified)", *strategy))
	}

	if *liveOn && (*workers != "" || *shards > 0 || strings.HasSuffix(*snapshot, ".kgm")) {
		fatal(fmt.Errorf("-live serves a single overlay store; it does not combine with -shards or -workers"))
	}
	if *workers != "" {
		if *snapshot == "" || !strings.HasSuffix(*snapshot, ".kgm") {
			fatal(fmt.Errorf("-workers requires -snapshot pointing at a .kgm shard manifest"))
		}
		serveDist(*snapshot, *workers, *addr, *estimator, *strategy, *adminOn, *pprofOn)
		return
	}
	if *snapshot != "" && strings.HasSuffix(*snapshot, ".kgm") {
		serveSharded(*snapshot, *snapMode, *addr, *estimator, *strategy, *adminOn, *pprofOn)
		return
	}

	var (
		ds     *kgexplore.Dataset
		prov   server.Provenance
		closer interface{ Close() error }
		err    error
	)
	start := time.Now()
	switch {
	case *snapshot != "":
		ds, prov, closer, err = server.LoadDataset(*snapshot, *snapMode != "copy")
	case *load != "":
		ds, prov, closer, err = server.LoadDataset(*load, false)
	case *gen == "lgd":
		ds, err = kgexplore.GenerateLGDSim(*scale)
		prov = server.Provenance{Source: fmt.Sprintf("lgd-sim@%g", *scale), Kind: "generated"}
	default:
		ds, err = kgexplore.GenerateDBpediaSim(*scale)
		prov = server.Provenance{Source: fmt.Sprintf("dbpedia-sim@%g", *scale), Kind: "generated"}
	}
	if err != nil {
		fatal(err)
	}
	if prov.Triples == 0 {
		prov.Triples = ds.NumTriples()
		prov.LoadMillis = time.Since(start).Milliseconds()
	}

	var srv *server.Server
	if *liveOn {
		lds, err := ds.Live(kgexplore.LiveOptions{Closer: closer, WALPath: *walPath, NoSync: *walNoSync})
		if err != nil {
			fatal(err)
		}
		prov.Kind = "live"
		prov.Triples = lds.NumTriples() // WAL replay may have grown it
		prov.LoadMillis = time.Since(start).Milliseconds()
		srv = server.NewLive(lds, prov)
		go compactLoop(srv, lds, *liveDir, *compactEvery, *compactMin)
	} else if *shards > 0 {
		sds, err := ds.BuildSharded(*shards, *partitioner)
		if err != nil {
			fatal(err)
		}
		if *estimator != "" {
			if err := sds.UseEstimator(*estimator); err != nil {
				fatal(err)
			}
		}
		prov.Kind = "sharded"
		prov.Shards = sds.NumShards()
		prov.LoadMillis = time.Since(start).Milliseconds()
		srv = server.NewSharded(sds, prov)
	} else {
		if *estimator != "" {
			if err := ds.UseEstimator(*estimator); err != nil {
				fatal(err)
			}
		}
		srv = server.NewWithProvenance(ds, prov, closer)
	}
	srv.Estimator = *estimator
	srv.Strategy = *strategy
	srv.EnablePprof = *pprofOn
	srv.EnableAdmin = *adminOn
	if *pprofOn {
		fmt.Fprintf(os.Stderr, "kgserver: pprof enabled at /debug/pprof/\n")
	}
	if *adminOn {
		fmt.Fprintf(os.Stderr, "kgserver: admin hot-swap enabled at POST /admin/swap\n")
	}
	mode := prov.Kind
	if prov.Mmap {
		mode += "/mmap"
	}
	if prov.Shards > 0 {
		mode += fmt.Sprintf("/%d-shards", prov.Shards)
	}
	fmt.Fprintf(os.Stderr, "kgserver: %d triples ready in %dms (%s from %s); listening on %s\n",
		prov.Triples, prov.LoadMillis, mode, prov.Source, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

// serveSharded serves a shard set from its .kgm manifest (kgsnap shard):
// per-shard .kgs snapshots are mmap'ed unless -snapmode=copy, and charts run
// scatter-gather Audit Join.
func serveSharded(path, snapMode, addr, estimator, strategy string, adminOn, pprofOn bool) {
	sds, prov, err := server.LoadShardedDataset(path, snapMode != "copy")
	if err != nil {
		fatal(err)
	}
	if estimator != "" {
		if err := sds.UseEstimator(estimator); err != nil {
			fatal(err)
		}
	}
	srv := server.NewSharded(sds, prov)
	srv.Estimator = estimator
	srv.Strategy = strategy
	srv.EnablePprof = pprofOn
	srv.EnableAdmin = adminOn
	fmt.Fprintf(os.Stderr, "kgserver: %d triples in %d shards ready in %dms (sharded from %s); listening on %s\n",
		prov.Triples, prov.Shards, prov.LoadMillis, prov.Source, addr)
	if err := http.ListenAndServe(addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

// serveDist serves a shard set through a kgworker fleet: the coordinator
// scatters chart runs across the workers, /healthz polls their stats, and
// with -admin POST /admin/swap performs the epoch-coordinated fleet-wide
// hot swap.
func serveDist(manifest, workers, addr, estimator, strategy string, adminOn, pprofOn bool) {
	var addrs []string // nil = the manifest's recorded placement
	if workers != "manifest" {
		addrs = strings.Split(workers, ",")
	}
	start := time.Now()
	dds, err := kgexplore.DialDistDataset(context.Background(), manifest, addrs)
	if err != nil {
		fatal(err)
	}
	if estimator != "" {
		if err := dds.UseEstimator(estimator); err != nil {
			fatal(err)
		}
	}
	prov := server.Provenance{
		Source:     manifest,
		Kind:       "distributed",
		Triples:    dds.NumTriples(),
		Shards:     dds.NumShards(),
		Workers:    len(dds.Workers()),
		LoadMillis: time.Since(start).Milliseconds(),
	}
	srv := server.NewDist(dds, prov)
	srv.Estimator = estimator
	srv.Strategy = strategy
	srv.EnablePprof = pprofOn
	srv.EnableAdmin = adminOn
	fmt.Fprintf(os.Stderr, "kgserver: %d triples in %d shards across %d workers ready in %dms (distributed from %s); listening on %s\n",
		prov.Triples, prov.Shards, prov.Workers, prov.LoadMillis, manifest, addr)
	if err := http.ListenAndServe(addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

// compactLoop is the -live background compactor: every interval it checks
// the overlay size and, past the threshold, folds base+delta into a fresh
// .kgs in dir via the external builder, adopts it, rotates the server's
// epoch so in-flight readers drain before the retired base unmaps, and
// removes the previous compaction's file. Ingest and serving never block on
// it. Errors are logged and surfaced in /healthz (lastError).
func compactLoop(srv *server.Server, lds *kgexplore.LiveDataset, dir string, every time.Duration, minOverlay int) {
	if dir == "" {
		d, err := os.MkdirTemp("", "kgserver-live-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "kgserver: live compactor disabled: %v\n", err)
			return
		}
		dir = d
	}
	if every <= 0 {
		every = 30 * time.Second
	}
	if minOverlay < 1 {
		minOverlay = 1
	}
	var prevPath string
	for range time.Tick(every) {
		st := lds.Stats()
		if st.DeltaAdds+st.Tombstones < minOverlay {
			continue
		}
		path := filepath.Join(dir, fmt.Sprintf("base-gen%d.kgs", st.Gen))
		res, err := lds.Compact(path)
		if err != nil {
			if err != kgexplore.ErrLiveCompacting {
				fmt.Fprintf(os.Stderr, "kgserver: live compaction: %v\n", err)
			}
			continue
		}
		srv.RotateLiveEpoch(res.Retired)
		if prevPath != "" {
			os.Remove(prevPath)
		}
		prevPath = path
		fmt.Fprintf(os.Stderr, "kgserver: compacted to %s in %dms (%d residual adds, %d residual tombstones)\n",
			path, res.Millis, res.ResidualAdds, res.ResidualTombs)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kgserver: %v\n", err)
	os.Exit(1)
}
