// Command kgworker serves one shard of a .kgm shard set as a network
// service: walk execution for its strata, span resolution for peers'
// cross-shard steps, the exact CTJ fallback, health stats, and the
// epoch-coordinated hot swap. A kgserver -workers fleet (or any
// dist.Coordinator) scatters stratified Audit Join runs across kgworkers
// and gathers the merged confidence intervals.
//
// Placement: by default the worker loads the WHOLE set (replicate) — on a
// single box the mmap'ed snapshots share the page cache between workers,
// so this costs address space, not memory, and it lets the coordinator
// re-allocate a lost worker's stratum to any survivor. With -own the
// worker loads only its own shard and resolves cross-shard steps through
// the peer workers named by -peers (or the manifest's workers list).
//
// Usage:
//
//	kgworker -manifest data.kgm -shard 0 -addr :7070
//	kgworker -manifest data.kgm -shard 1 -addr :0            # prints the port
//	kgworker -manifest data.kgm -shard 2 -own -peers a:1,b:2,c:3,d:4
//
// The worker trusts its peers (see internal/dist's trust model): deploy it
// on an isolated network, never on a public address.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"kgexplore/internal/dist"
)

func main() {
	manifest := flag.String("manifest", "", "shard manifest path (.kgm)")
	shardN := flag.Int("shard", 0, "shard index this worker serves")
	addr := flag.String("addr", "127.0.0.1:0", "listen address (use :0 to pick a free port, printed on stdout)")
	own := flag.Bool("own", false, "load only the own shard; resolve cross-shard steps via -peers")
	peers := flag.String("peers", "", "comma-separated worker addresses, one per shard (with -own; default: the manifest's workers list)")
	copyLoad := flag.Bool("copy", false, "verified copy loads instead of mmap")
	flag.Parse()
	if *manifest == "" {
		flag.Usage()
		os.Exit(2)
	}

	opts := dist.WorkerOptions{
		Manifest: *manifest,
		Shard:    *shardN,
		Own:      *own,
		Copy:     *copyLoad,
	}
	if *peers != "" {
		opts.Peers = strings.Split(*peers, ",")
	}
	w, err := dist.NewWorker(opts)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The resolved address line is machine-readable on purpose: kgbench
	// -distbench and scripts scrape it to learn the picked port under :0.
	fmt.Printf("kgworker: listening on %s\n", ln.Addr())
	placement := "replicate"
	if *own {
		placement = "own"
	}
	fmt.Printf("kgworker: serving shard %d of %s (%s placement)\n", *shardN, *manifest, placement)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("kgworker: shutting down")
		w.Close()
	}()

	if err := w.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kgworker: %v\n", err)
	os.Exit(1)
}
